"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_defaults(self):
        args = make_parser().parse_args(["fig3"])
        assert args.scale == "quick"
        assert args.seed == 0
        assert args.verbose is False
        assert args.backend == "serial"
        assert args.workers is None

    def test_backend_options(self):
        args = make_parser().parse_args(
            ["--backend", "process", "--workers", "4", "fig3"]
        )
        assert args.backend == "process"
        assert args.workers == 4

    def test_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["--backend", "quantum", "fig3"])

    def test_engine_defaults_to_auto(self):
        assert make_parser().parse_args(["fig3"]).engine == "auto"

    def test_engine_options(self):
        for engine in ("auto", "scalar", "batch", "sharded"):
            assert make_parser().parse_args(
                ["--engine", engine, "fig3"]
            ).engine == engine

    def test_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["--engine", "warp", "fig3"])

    def test_iid_options(self):
        args = make_parser().parse_args(["--scale", "tiny", "iid", "--mid", "123"])
        assert args.scale == "tiny"
        assert args.mid == 123

    def test_fig4_no_average(self):
        args = make_parser().parse_args(["fig4", "--no-average"])
        assert args.no_average is True

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["--scale", "huge", "fig3"])

    def test_resilience_options(self):
        args = make_parser().parse_args(
            ["--checkpoint-dir", "/tmp/ck", "--resume",
             "--run-timeout", "30", "--cycle-budget", "1000000", "fig3"]
        )
        assert args.checkpoint_dir == "/tmp/ck"
        assert args.resume is True
        assert args.run_timeout == 30.0
        assert args.cycle_budget == 1000000

    def test_resume_requires_checkpoint_dir(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError, match="--checkpoint-dir"):
            main(["--resume", "fig3"])


class TestExecution:
    """End-to-end CLI runs at tiny scale (slow-ish but real)."""

    def test_iid_command(self, capsys):
        code = main(["--scale", "tiny", "--seed", "3", "iid"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MBPTA compliance" in out
        assert "ID" in out

    def test_fig4_no_average_command(self, capsys):
        code = main(["--scale", "tiny", "--seed", "3", "fig4", "--no-average"])
        assert code == 0
        out = capsys.readouterr().out
        assert "wgIPC" in out
        assert "S-curve deciles" in out

    def test_process_backend_matches_serial(self, capsys):
        code = main(["--scale", "tiny", "--seed", "3", "iid"])
        assert code == 0
        serial_out = capsys.readouterr().out
        code = main(["--scale", "tiny", "--seed", "3", "--backend", "process",
                     "--workers", "2", "iid"])
        assert code == 0
        assert capsys.readouterr().out == serial_out

    def test_engines_print_identical_tables(self, capsys):
        code = main(["--scale", "tiny", "--seed", "3", "--engine", "scalar",
                     "iid"])
        assert code == 0
        scalar_out = capsys.readouterr().out
        code = main(["--scale", "tiny", "--seed", "3", "--engine", "batch",
                     "iid"])
        assert code == 0
        assert capsys.readouterr().out == scalar_out

    def test_strict_batch_engine_refuses_profile(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="profil"):
            main(["--scale", "tiny", "--engine", "batch", "--profile", "iid"])

    def test_strict_batch_engine_refuses_deployment_runs(self):
        from repro.errors import ConfigurationError

        # fig4's measured-average pass co-runs workloads (deployment
        # mode), which the batch engine must reject by name instead of
        # silently interpreting scalar.
        with pytest.raises(ConfigurationError, match="deployment"):
            main(["--scale", "tiny", "--engine", "batch", "fig4"])

    def test_checkpointed_resume_matches_fresh_run(self, tmp_path, capsys):
        code = main(["--scale", "tiny", "--seed", "3", "iid"])
        assert code == 0
        fresh_out = capsys.readouterr().out
        ckpt = str(tmp_path / "journals")
        code = main(["--scale", "tiny", "--seed", "3",
                     "--checkpoint-dir", ckpt, "iid"])
        assert code == 0
        assert capsys.readouterr().out == fresh_out
        # Second invocation resumes every campaign entirely from the
        # journals and must print the identical table.
        code = main(["--scale", "tiny", "--seed", "3",
                     "--checkpoint-dir", ckpt, "--resume", "iid"])
        assert code == 0
        assert capsys.readouterr().out == fresh_out


class TestCsvExport:
    def test_iid_csv_written(self, tmp_path, capsys):
        prefix = str(tmp_path / "out-")
        code = main(["--scale", "tiny", "--seed", "3", "--csv", prefix, "iid"])
        assert code == 0
        csv_path = tmp_path / "out-iid.csv"
        assert csv_path.exists()
        content = csv_path.read_text().splitlines()
        assert content[0].startswith("benchmark,")
        assert len(content) == 11  # header + 10 benchmarks


class TestWorkerValidation:
    def test_rejects_zero_workers(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError, match="--workers"):
            main(["--backend", "process", "--workers", "0", "fig3"])

    def test_rejects_negative_workers(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError, match="positive"):
            main(["--backend", "process", "--workers", "-3", "fig3"])

    def test_single_cpu_process_backend_warns_and_proceeds(
        self, monkeypatch, capsys
    ):
        import repro.cli as cli
        monkeypatch.setattr(cli, "usable_cpus", lambda: 1)
        code = main(["--scale", "tiny", "--seed", "3",
                     "--backend", "process", "--workers", "2", "iid"])
        assert code == 0
        captured = capsys.readouterr()
        assert "single-CPU host" in captured.err
        assert "MBPTA compliance" in captured.out

    def test_multi_cpu_process_backend_does_not_warn(self, monkeypatch, capsys):
        import repro.cli as cli
        monkeypatch.setattr(cli, "usable_cpus", lambda: 8)
        code = main(["--scale", "tiny", "--seed", "3",
                     "--backend", "process", "--workers", "2", "iid"])
        assert code == 0
        assert "single-CPU host" not in capsys.readouterr().err


class TestWorkerEngineConflicts:
    def test_process_backend_conflicts_with_batch_engine(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError,
                           match="--backend process conflicts"):
            main(["--backend", "process", "--engine", "batch", "fig3"])

    def test_process_backend_conflicts_with_sharded_engine(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError, match="--engine sharded"):
            main(["--backend", "process", "--engine", "sharded", "fig3"])

    def test_workers_with_scalar_engine_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError, match="--engine scalar"):
            main(["--engine", "scalar", "--workers", "2", "fig3"])

    def test_workers_route_to_shards_without_process_backend(self, capsys):
        # --engine batch --workers 2 means two shards: the run must
        # complete and print the same table a scalar run prints.
        code = main(["--scale", "tiny", "--seed", "3", "--engine", "scalar",
                     "iid"])
        assert code == 0
        scalar_out = capsys.readouterr().out
        code = main(["--scale", "tiny", "--seed", "3", "--engine", "batch",
                     "--workers", "2", "iid"])
        assert code == 0
        assert capsys.readouterr().out == scalar_out


class TestProfileFlag:
    def test_profile_prints_attribution_table(self, capsys):
        code = main(["--scale", "tiny", "--seed", "3", "--profile", "iid"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hot-path profile" in out
        for component in ("l1", "bus", "llc", "efl", "memctrl"):
            assert component in out

    def test_no_profile_no_table(self, capsys):
        code = main(["--scale", "tiny", "--seed", "3", "iid"])
        assert code == 0
        assert "hot-path profile" not in capsys.readouterr().out

    def test_profile_does_not_change_results(self, capsys):
        code = main(["--scale", "tiny", "--seed", "3", "iid"])
        assert code == 0
        plain = capsys.readouterr().out
        code = main(["--scale", "tiny", "--seed", "3", "--profile", "iid"])
        assert code == 0
        profiled = capsys.readouterr().out
        assert profiled.startswith(plain.rstrip("\n"))


class TestLogFlags:
    def test_defaults(self):
        args = make_parser().parse_args(["iid"])
        assert args.log_level == "info"
        assert args.log_format == "plain"

    def test_rejects_unknown_level_and_format(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["--log-level", "loud", "iid"])
        with pytest.raises(SystemExit):
            make_parser().parse_args(["--log-format", "xml", "iid"])

    def test_verbose_plain_output_unchanged(self, capsys):
        # The default --log-level/--log-format must reproduce the
        # historical --verbose text output byte for byte.
        code = main(["--scale", "tiny", "--seed", "3", "--verbose", "iid"])
        assert code == 0
        err = capsys.readouterr().err
        assert "  [campaign:" in err
        assert "0 failed, 0 retried]" in err

    def test_quiet_silences_progress(self, capsys):
        code = main(["--scale", "tiny", "--seed", "3", "--verbose",
                     "--log-level", "quiet", "iid"])
        assert code == 0
        assert "[campaign" not in capsys.readouterr().err

    def test_json_log_format_emits_jsonl(self, capsys):
        import json as json_mod

        code = main(["--scale", "tiny", "--seed", "3", "--verbose",
                     "--log-format", "json", "iid"])
        assert code == 0
        lines = [line for line in capsys.readouterr().err.splitlines()
                 if line.startswith("{")]
        assert lines
        events = {json_mod.loads(line)["event"] for line in lines}
        assert "campaign_start" in events


class TestSubmitStatus:
    def test_submit_parser_options(self):
        args = make_parser().parse_args(
            ["submit", "--store", "s", "--bench", "RS",
             "--scenario", "EFL500", "--runs", "7", "--json"]
        )
        assert args.store == "s"
        assert args.bench == "RS"
        assert args.scenario == "EFL500"
        assert args.runs == 7
        assert args.json is True

    def test_submit_requires_store_bench_scenario(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["submit", "--bench", "RS",
                                      "--scenario", "EFL500"])
        with pytest.raises(SystemExit):
            make_parser().parse_args(["submit", "--store", "s"])

    def test_submit_rejects_process_backend(self, tmp_path):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="no --backend"):
            main(["--backend", "process", "submit",
                  "--store", str(tmp_path), "--bench", "RS",
                  "--scenario", "EFL100"])

    def test_submit_then_cached_resubmit(self, tmp_path, capsys):
        import json as json_mod

        store = str(tmp_path / "store")
        argv = ["--scale", "tiny", "--seed", "3", "submit",
                "--store", store, "--bench", "RS",
                "--scenario", "EFL100", "--runs", "6", "--json"]
        assert main(argv) == 0
        captured = capsys.readouterr()
        first = json_mod.loads(captured.out)
        assert "source simulated" in captured.err
        assert "6 runs simulated" in captured.err

        # Byte-identical resubmission: zero runs simulated, identical
        # payload served from the store.
        assert main(argv) == 0
        captured = capsys.readouterr()
        assert "source store" in captured.err
        assert "0 runs simulated" in captured.err
        assert json_mod.loads(captured.out) == first

    def test_submit_writes_telemetry_artifacts(self, tmp_path, capsys):
        import json as json_mod

        store = str(tmp_path / "store")
        teldir = tmp_path / "telemetry"
        assert main(["--scale", "tiny", "--seed", "3", "submit",
                     "--store", store, "--bench", "RS",
                     "--scenario", "EFL100", "--runs", "4",
                     "--telemetry-dir", str(teldir)]) == 0
        capsys.readouterr()
        metrics = json_mod.loads((teldir / "metrics.json").read_text())
        spans = json_mod.loads((teldir / "spans.json").read_text())
        assert metrics["counters"]["runs_simulated"] == 4
        assert metrics["counters"]["runs_requested"] == 4
        assert spans[0]["name"] == "campaign"

    def test_status_lists_entries(self, tmp_path, capsys):
        store = str(tmp_path / "store")
        assert main(["--scale", "tiny", "--seed", "3", "submit",
                     "--store", store, "--bench", "RS",
                     "--scenario", "EFL100", "--runs", "4"]) == 0
        capsys.readouterr()
        assert main(["status", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "1 entries" in out
        assert "RS under EFL100" in out

    def test_status_json_and_corrupt_detection(self, tmp_path, capsys):
        import json as json_mod

        store_dir = tmp_path / "store"
        assert main(["--scale", "tiny", "--seed", "3", "submit",
                     "--store", str(store_dir), "--bench", "RS",
                     "--scenario", "EFL100", "--runs", "4"]) == 0
        capsys.readouterr()
        # Tamper with the single entry.
        entry_path = next(store_dir.glob("*.json"))
        entry = json_mod.loads(entry_path.read_text())
        entry["payload"]["execution_times"][0] += 1
        entry_path.write_text(json_mod.dumps(entry))
        assert main(["status", "--store", str(store_dir), "--json"]) == 1
        summary = json_mod.loads(capsys.readouterr().out)
        assert summary["entries"][0]["ok"] is False

    def test_status_empty_store(self, tmp_path, capsys):
        assert main(["status", "--store", str(tmp_path / "empty")]) == 0
        assert "empty" in capsys.readouterr().out

    def test_status_json_surfaces_kernel_stats(self, tmp_path, capsys):
        import json as json_mod

        store = str(tmp_path / "store")
        assert main(["--scale", "tiny", "--seed", "3",
                     "--engine", "kernel", "submit",
                     "--store", store, "--bench", "RS",
                     "--scenario", "EFL100", "--runs", "4"]) == 0
        capsys.readouterr()
        assert main(["status", "--store", store, "--json"]) == 0
        summary = json_mod.loads(capsys.readouterr().out)
        kernel = summary["entries"][0]["kernel"]
        assert kernel["chains"] >= 1
        assert 0.0 <= kernel["fusion_ratio"] <= 1.0
