"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main, make_parser


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    def test_defaults(self):
        args = make_parser().parse_args(["fig3"])
        assert args.scale == "quick"
        assert args.seed == 0
        assert args.verbose is False
        assert args.backend == "serial"
        assert args.workers is None

    def test_backend_options(self):
        args = make_parser().parse_args(
            ["--backend", "process", "--workers", "4", "fig3"]
        )
        assert args.backend == "process"
        assert args.workers == 4

    def test_rejects_unknown_backend(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["--backend", "quantum", "fig3"])

    def test_engine_defaults_to_auto(self):
        assert make_parser().parse_args(["fig3"]).engine == "auto"

    def test_engine_options(self):
        for engine in ("auto", "scalar", "batch", "sharded"):
            assert make_parser().parse_args(
                ["--engine", engine, "fig3"]
            ).engine == engine

    def test_rejects_unknown_engine(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["--engine", "warp", "fig3"])

    def test_iid_options(self):
        args = make_parser().parse_args(["--scale", "tiny", "iid", "--mid", "123"])
        assert args.scale == "tiny"
        assert args.mid == 123

    def test_fig4_no_average(self):
        args = make_parser().parse_args(["fig4", "--no-average"])
        assert args.no_average is True

    def test_rejects_unknown_scale(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args(["--scale", "huge", "fig3"])

    def test_resilience_options(self):
        args = make_parser().parse_args(
            ["--checkpoint-dir", "/tmp/ck", "--resume",
             "--run-timeout", "30", "--cycle-budget", "1000000", "fig3"]
        )
        assert args.checkpoint_dir == "/tmp/ck"
        assert args.resume is True
        assert args.run_timeout == 30.0
        assert args.cycle_budget == 1000000

    def test_resume_requires_checkpoint_dir(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError, match="--checkpoint-dir"):
            main(["--resume", "fig3"])


class TestExecution:
    """End-to-end CLI runs at tiny scale (slow-ish but real)."""

    def test_iid_command(self, capsys):
        code = main(["--scale", "tiny", "--seed", "3", "iid"])
        assert code == 0
        out = capsys.readouterr().out
        assert "MBPTA compliance" in out
        assert "ID" in out

    def test_fig4_no_average_command(self, capsys):
        code = main(["--scale", "tiny", "--seed", "3", "fig4", "--no-average"])
        assert code == 0
        out = capsys.readouterr().out
        assert "wgIPC" in out
        assert "S-curve deciles" in out

    def test_process_backend_matches_serial(self, capsys):
        code = main(["--scale", "tiny", "--seed", "3", "iid"])
        assert code == 0
        serial_out = capsys.readouterr().out
        code = main(["--scale", "tiny", "--seed", "3", "--backend", "process",
                     "--workers", "2", "iid"])
        assert code == 0
        assert capsys.readouterr().out == serial_out

    def test_engines_print_identical_tables(self, capsys):
        code = main(["--scale", "tiny", "--seed", "3", "--engine", "scalar",
                     "iid"])
        assert code == 0
        scalar_out = capsys.readouterr().out
        code = main(["--scale", "tiny", "--seed", "3", "--engine", "batch",
                     "iid"])
        assert code == 0
        assert capsys.readouterr().out == scalar_out

    def test_strict_batch_engine_refuses_profile(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match="profil"):
            main(["--scale", "tiny", "--engine", "batch", "--profile", "iid"])

    def test_strict_batch_engine_refuses_deployment_runs(self):
        from repro.errors import ConfigurationError

        # fig4's measured-average pass co-runs workloads (deployment
        # mode), which the batch engine must reject by name instead of
        # silently interpreting scalar.
        with pytest.raises(ConfigurationError, match="deployment"):
            main(["--scale", "tiny", "--engine", "batch", "fig4"])

    def test_checkpointed_resume_matches_fresh_run(self, tmp_path, capsys):
        code = main(["--scale", "tiny", "--seed", "3", "iid"])
        assert code == 0
        fresh_out = capsys.readouterr().out
        ckpt = str(tmp_path / "journals")
        code = main(["--scale", "tiny", "--seed", "3",
                     "--checkpoint-dir", ckpt, "iid"])
        assert code == 0
        assert capsys.readouterr().out == fresh_out
        # Second invocation resumes every campaign entirely from the
        # journals and must print the identical table.
        code = main(["--scale", "tiny", "--seed", "3",
                     "--checkpoint-dir", ckpt, "--resume", "iid"])
        assert code == 0
        assert capsys.readouterr().out == fresh_out


class TestCsvExport:
    def test_iid_csv_written(self, tmp_path, capsys):
        prefix = str(tmp_path / "out-")
        code = main(["--scale", "tiny", "--seed", "3", "--csv", prefix, "iid"])
        assert code == 0
        csv_path = tmp_path / "out-iid.csv"
        assert csv_path.exists()
        content = csv_path.read_text().splitlines()
        assert content[0].startswith("benchmark,")
        assert len(content) == 11  # header + 10 benchmarks


class TestWorkerValidation:
    def test_rejects_zero_workers(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError, match="--workers"):
            main(["--backend", "process", "--workers", "0", "fig3"])

    def test_rejects_negative_workers(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError, match="positive"):
            main(["--backend", "process", "--workers", "-3", "fig3"])

    def test_single_cpu_process_backend_warns_and_proceeds(
        self, monkeypatch, capsys
    ):
        import repro.cli as cli
        monkeypatch.setattr(cli, "usable_cpus", lambda: 1)
        code = main(["--scale", "tiny", "--seed", "3",
                     "--backend", "process", "--workers", "2", "iid"])
        assert code == 0
        captured = capsys.readouterr()
        assert "single-CPU host" in captured.err
        assert "MBPTA compliance" in captured.out

    def test_multi_cpu_process_backend_does_not_warn(self, monkeypatch, capsys):
        import repro.cli as cli
        monkeypatch.setattr(cli, "usable_cpus", lambda: 8)
        code = main(["--scale", "tiny", "--seed", "3",
                     "--backend", "process", "--workers", "2", "iid"])
        assert code == 0
        assert "single-CPU host" not in capsys.readouterr().err


class TestWorkerEngineConflicts:
    def test_process_backend_conflicts_with_batch_engine(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError,
                           match="--backend process conflicts"):
            main(["--backend", "process", "--engine", "batch", "fig3"])

    def test_process_backend_conflicts_with_sharded_engine(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError, match="--engine sharded"):
            main(["--backend", "process", "--engine", "sharded", "fig3"])

    def test_workers_with_scalar_engine_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError, match="--engine scalar"):
            main(["--engine", "scalar", "--workers", "2", "fig3"])

    def test_workers_route_to_shards_without_process_backend(self, capsys):
        # --engine batch --workers 2 means two shards: the run must
        # complete and print the same table a scalar run prints.
        code = main(["--scale", "tiny", "--seed", "3", "--engine", "scalar",
                     "iid"])
        assert code == 0
        scalar_out = capsys.readouterr().out
        code = main(["--scale", "tiny", "--seed", "3", "--engine", "batch",
                     "--workers", "2", "iid"])
        assert code == 0
        assert capsys.readouterr().out == scalar_out


class TestProfileFlag:
    def test_profile_prints_attribution_table(self, capsys):
        code = main(["--scale", "tiny", "--seed", "3", "--profile", "iid"])
        assert code == 0
        out = capsys.readouterr().out
        assert "hot-path profile" in out
        for component in ("l1", "bus", "llc", "efl", "memctrl"):
            assert component in out

    def test_no_profile_no_table(self, capsys):
        code = main(["--scale", "tiny", "--seed", "3", "iid"])
        assert code == 0
        assert "hot-path profile" not in capsys.readouterr().out

    def test_profile_does_not_change_results(self, capsys):
        code = main(["--scale", "tiny", "--seed", "3", "iid"])
        assert code == 0
        plain = capsys.readouterr().out
        code = main(["--scale", "tiny", "--seed", "3", "--profile", "iid"])
        assert code == 0
        profiled = capsys.readouterr().out
        assert profiled.startswith(plain.rstrip("\n"))
