"""Tests for the EVT layer: Gumbel fitting and pWCET estimation."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import AnalysisError
from repro.pta.evt import (
    GumbelFit,
    block_maxima,
    fit_gumbel_pwm,
    pwcet_curve,
    pwcet_estimate,
    pwcet_estimate_pot,
)


def gumbel_sample(mu, beta, n, seed=0):
    rng = random.Random(seed)
    return [mu - beta * math.log(-math.log(rng.random())) for _ in range(n)]


class TestGumbelFit:
    def test_recovers_parameters(self):
        sample = gumbel_sample(mu=1000.0, beta=25.0, n=5000, seed=1)
        fit = fit_gumbel_pwm(sample)
        assert fit.location == pytest.approx(1000.0, rel=0.02)
        assert fit.scale == pytest.approx(25.0, rel=0.10)

    def test_constant_sample_degenerates(self):
        fit = fit_gumbel_pwm([42.0] * 100)
        assert fit.scale == 0.0
        assert fit.location == pytest.approx(42.0)

    def test_cdf_quantile_roundtrip(self):
        fit = GumbelFit(location=100.0, scale=10.0)
        for prob in (0.5, 1e-3, 1e-9, 1e-15, 1e-19):
            x = fit.quantile_of_exceedance(prob)
            assert fit.exceedance(x) == pytest.approx(prob, rel=1e-6)

    def test_quantile_monotone_in_probability(self):
        fit = GumbelFit(location=0.0, scale=1.0)
        quantiles = [
            fit.quantile_of_exceedance(p) for p in (1e-3, 1e-6, 1e-9, 1e-15)
        ]
        assert quantiles == sorted(quantiles)

    def test_mean(self):
        fit = GumbelFit(location=10.0, scale=2.0)
        assert fit.mean() == pytest.approx(10.0 + 0.5772156649 * 2.0)

    def test_rejects_bad_probability(self):
        fit = GumbelFit(location=0.0, scale=1.0)
        with pytest.raises(AnalysisError):
            fit.quantile_of_exceedance(0.0)
        with pytest.raises(AnalysisError):
            fit.quantile_of_exceedance(1.0)

    def test_needs_two_points(self):
        with pytest.raises(AnalysisError):
            fit_gumbel_pwm([1.0])


class TestBlockMaxima:
    def test_basic(self):
        assert block_maxima([1, 5, 2, 7, 3, 4], 2) == [5, 7, 4]

    def test_partial_block_discarded(self):
        assert block_maxima([1, 5, 2, 7, 99], 2) == [5, 7]

    def test_too_few_blocks_rejected(self):
        with pytest.raises(AnalysisError):
            block_maxima([1, 2, 3], 3)

    def test_bad_block_size(self):
        with pytest.raises(AnalysisError):
            block_maxima([1, 2, 3, 4], 0)


class TestPwcetEstimate:
    def test_never_below_observed_max(self):
        sample = gumbel_sample(1000, 5, 500, seed=3)
        estimate = pwcet_estimate(sample, 1e-15, block_size=25)
        assert estimate >= max(sample)

    def test_monotone_in_probability(self):
        sample = gumbel_sample(1000, 5, 500, seed=4)
        e15 = pwcet_estimate(sample, 1e-15, block_size=25)
        e19 = pwcet_estimate(sample, 1e-19, block_size=25)
        assert e19 >= e15

    def test_exceedance_rate_upper_bounded(self):
        """Fresh observations must practically never exceed the pWCET."""
        estimate = pwcet_estimate(
            gumbel_sample(1000, 10, 1000, seed=5), 1e-9, block_size=25
        )
        fresh = gumbel_sample(1000, 10, 20_000, seed=6)
        exceedances = sum(1 for x in fresh if x > estimate)
        assert exceedances == 0

    def test_constant_sample(self):
        assert pwcet_estimate([7.0] * 100, 1e-15, block_size=10) == 7.0

    def test_rejects_bad_probability(self):
        with pytest.raises(AnalysisError):
            pwcet_estimate([1.0] * 100, 0.0)

    def test_curve_consistent_with_single_estimates(self):
        sample = gumbel_sample(500, 8, 500, seed=7)
        curve = pwcet_curve(sample, [1e-15, 1e-17], block_size=25)
        assert curve[1e-15] == pytest.approx(
            pwcet_estimate(sample, 1e-15, block_size=25)
        )
        assert curve[1e-17] >= curve[1e-15]


class TestPoT:
    def test_close_to_block_maxima_on_gumbel_data(self):
        sample = gumbel_sample(1000, 10, 2000, seed=8)
        bm = pwcet_estimate(sample, 1e-12, block_size=40)
        pot = pwcet_estimate_pot(sample, 1e-12)
        assert pot == pytest.approx(bm, rel=0.15)

    def test_needs_enough_exceedances(self):
        with pytest.raises(AnalysisError):
            pwcet_estimate_pot([1.0] * 20, 1e-9, threshold_quantile=0.99)

    def test_never_below_observed_max(self):
        sample = gumbel_sample(100, 3, 400, seed=9)
        assert pwcet_estimate_pot(sample, 1e-15) >= max(sample)
