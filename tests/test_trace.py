"""Tests for the ISA model, trace container and trace builder."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cpu.isa import EXEC_LATENCY, INSTRUCTION_BYTES, OpKind, is_memory_op
from repro.cpu.trace import Trace, TraceBuilder
from repro.errors import TraceError


class TestISA:
    def test_memory_ops(self):
        assert is_memory_op(OpKind.LOAD)
        assert is_memory_op(OpKind.STORE)
        assert not is_memory_op(OpKind.ALU)
        assert not is_memory_op(OpKind.MUL)
        assert not is_memory_op(OpKind.BRANCH)

    def test_exec_latency_covers_non_memory_kinds(self):
        for kind in OpKind:
            if not is_memory_op(kind):
                assert EXEC_LATENCY[kind] >= 1

    def test_alu_is_single_cycle(self):
        """The paper: integer additions take 1 cycle."""
        assert EXEC_LATENCY[OpKind.ALU] == 1


class TestTraceBuilder:
    def test_pc_advances(self):
        builder = TraceBuilder("t", code_base=0x100)
        builder.alu(3)
        trace = builder.build()
        assert trace.pcs == [0x100, 0x104, 0x108]

    def test_loop_reuses_pcs(self):
        builder = TraceBuilder("t")
        for _ in range(3):
            body = builder.loop_start()
            builder.load(0x1000)
            builder.branch(back_to=body)
        trace = builder.build()
        assert len(trace) == 6
        assert len(trace.code_footprint()) == 2

    def test_kinds_and_addresses(self):
        builder = TraceBuilder("t")
        builder.load(0x10)
        builder.store(0x20)
        builder.alu()
        builder.mul()
        builder.branch()
        trace = builder.build()
        assert trace.kinds == [
            OpKind.LOAD, OpKind.STORE, OpKind.ALU, OpKind.MUL, OpKind.BRANCH
        ]
        assert trace.addresses == [0x10, 0x20, None, None, None]

    def test_call_and_return(self):
        builder = TraceBuilder("t", code_base=0)
        return_pc = builder.call(0x500)
        builder.alu()  # emitted at callee
        builder.branch(back_to=return_pc)
        builder.alu()  # back at caller
        trace = builder.build()
        assert trace.pcs == [0, 0x500, 0x504, return_pc]

    def test_rejects_negative_addresses(self):
        builder = TraceBuilder("t")
        with pytest.raises(TraceError):
            builder.load(-4)
        with pytest.raises(TraceError):
            builder.store(-4)
        with pytest.raises(TraceError):
            builder.branch(back_to=-8)

    def test_rejects_negative_code_base(self):
        with pytest.raises(TraceError):
            TraceBuilder("t", code_base=-1)

    def test_len(self):
        builder = TraceBuilder("t")
        builder.alu(5)
        assert len(builder) == 5


class TestTrace:
    def test_empty_rejected(self):
        with pytest.raises(TraceError):
            Trace("t", [], [], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(TraceError):
            Trace("t", [0], [int(OpKind.ALU)], [None, None])

    def test_memory_op_needs_address(self):
        with pytest.raises(TraceError):
            Trace("t", [0], [int(OpKind.LOAD)], [None])

    def test_non_memory_op_rejects_address(self):
        with pytest.raises(TraceError):
            Trace("t", [0], [int(OpKind.ALU)], [0x10])

    def test_counts(self):
        builder = TraceBuilder("t")
        builder.load(0)
        builder.alu(2)
        builder.store(16)
        trace = builder.build()
        assert trace.instruction_count == 4
        assert trace.memory_op_count == 2

    def test_data_footprint(self):
        builder = TraceBuilder("t")
        builder.load(0x10)
        builder.load(0x10)
        builder.store(0x20)
        trace = builder.build()
        assert trace.data_footprint() == {0x10, 0x20}

    def test_iteration(self):
        builder = TraceBuilder("t", code_base=8)
        builder.load(0x40)
        trace = builder.build()
        assert list(trace) == [(8, OpKind.LOAD, 0x40)]

    @given(
        n_alu=st.integers(min_value=1, max_value=50),
        n_loads=st.integers(min_value=0, max_value=50),
    )
    @settings(max_examples=30)
    def test_builder_counts_always_consistent(self, n_alu, n_loads):
        builder = TraceBuilder("t")
        builder.alu(n_alu)
        for i in range(n_loads):
            builder.load(16 * i)
        trace = builder.build()
        assert trace.instruction_count == n_alu + n_loads
        assert trace.memory_op_count == n_loads
        # PCs strictly increase in a straight-line trace.
        assert all(b - a == INSTRUCTION_BYTES for a, b in zip(trace.pcs, trace.pcs[1:]))
