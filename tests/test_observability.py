"""Observability layer: structured logs, metrics, spans — and the
bit-neutrality contract.

The load-bearing property is the last one: attaching a full
:class:`~repro.observability.Telemetry` bundle to a campaign changes
*nothing* about the sample — times, seeds, records and checksums are
bit-identical with and without it, across every engine.  Telemetry
observes, never decides.
"""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.observability import (
    LEVELS,
    Histogram,
    MetricsRegistry,
    StructuredLogger,
    Telemetry,
    Tracer,
    attached_telemetry,
    current_telemetry,
    null_logger,
)
from repro.sim.campaign import collect_execution_times
from repro.sim.config import Scenario

from .conftest import make_stream_trace


# ----------------------------------------------------------------------
# structured logger
# ----------------------------------------------------------------------
class TestStructuredLogger:
    def test_plain_format_matches_historical_output(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream=stream, level="info", fmt="plain")
        logger.info("campaign_start", message="campaign: RS under EFL100 (10 runs)")
        assert stream.getvalue() == "  [campaign: RS under EFL100 (10 runs)]\n"

    def test_kv_format_quotes_and_orders_fields(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream=stream, level="info", fmt="kv")
        logger.info("job_done", job="job-000001", runs=8, note="two words")
        line = stream.getvalue().strip()
        assert "event=job_done" in line
        assert "job=job-000001" in line
        assert "runs=8" in line
        assert 'note="two words"' in line

    def test_json_format_emits_parseable_records(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream=stream, level="debug", fmt="json")
        logger.debug("run_done", index=3, cycles=1234)
        record = json.loads(stream.getvalue())
        assert record["event"] == "run_done"
        assert record["level"] == "debug"
        assert record["index"] == 3
        assert record["cycles"] == 1234

    def test_level_threshold_filters(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream=stream, level="warning", fmt="kv")
        logger.info("ignored")
        logger.debug("ignored")
        logger.warning("kept")
        logger.error("kept_too")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        assert not logger.is_enabled("info")
        assert logger.is_enabled("error")

    def test_quiet_logger_emits_nothing(self):
        logger = null_logger()
        logger.error("even_errors_dropped")
        assert not logger.is_enabled("error")

    def test_bind_attaches_context_to_every_record(self):
        stream = io.StringIO()
        base = StructuredLogger(stream=stream, level="info", fmt="kv")
        bound = base.bind(job="job-000007")
        bound.info("tick")
        assert "job=job-000007" in stream.getvalue()

    def test_unknown_level_and_format_rejected(self):
        with pytest.raises(ValueError):
            StructuredLogger(stream=io.StringIO(), level="loud")
        with pytest.raises(ValueError):
            StructuredLogger(stream=io.StringIO(), fmt="xml")
        assert set(LEVELS) >= {"debug", "info", "warning", "error", "quiet"}

    def test_dedupe_key_emits_once_per_logger(self):
        stream = io.StringIO()
        logger = StructuredLogger(stream=stream, level="info", fmt="kv")
        logger.info("message", message="degrading to serial", dedupe="degrade")
        logger.info("message", message="degrading to serial", dedupe="degrade")
        logger.info("message", message="other advisory", dedupe="other")
        lines = stream.getvalue().strip().splitlines()
        assert len(lines) == 2
        # The dedupe key is consumed, never rendered into the record.
        assert all("dedupe" not in line for line in lines)

    def test_dedupe_scope_is_the_bound_child(self):
        # bind() children start with a fresh dedupe set: the scope is
        # one bound context (e.g. one campaign's telemetry observer),
        # not the whole process.
        stream = io.StringIO()
        base = StructuredLogger(stream=stream, level="info", fmt="kv")
        first = base.bind(job="job-1")
        second = base.bind(job="job-2")
        first.info("message", message="advisory", dedupe="advisory")
        first.info("message", message="advisory", dedupe="advisory")
        second.info("message", message="advisory", dedupe="advisory")
        assert len(stream.getvalue().strip().splitlines()) == 2


# ----------------------------------------------------------------------
# metrics
# ----------------------------------------------------------------------
class TestMetrics:
    def test_counter_inc_and_value(self):
        registry = MetricsRegistry()
        registry.counter("runs_simulated").inc()
        registry.counter("runs_simulated").inc(9)
        assert registry.value("runs_simulated") == 10
        assert registry.value("never_touched") == 0

    def test_counter_rejects_negative_increments(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            registry.counter("c").inc(-1)

    def test_histogram_summary(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 0.7, 5.0):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 4
        assert summary["min"] == 0.05
        assert summary["max"] == 5.0
        assert summary["buckets"]["le_0.1"] == 1
        assert summary["buckets"]["le_1"] == 2
        assert summary["buckets"]["inf"] == 1

    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(3)
        registry.histogram("h").observe(0.2)
        snapshot = json.loads(registry.to_json())
        assert snapshot["counters"]["a"] == 3
        assert snapshot["histograms"]["h"]["count"] == 1

    def test_histogram_edge_sample_lands_in_its_bound_bucket(self):
        # Prometheus le convention: a sample exactly equal to a bound
        # belongs to that bound's bucket, deterministically — never to
        # the next one up.
        registry = MetricsRegistry()
        hist = registry.histogram("edges", buckets=(0.1, 1.0, 5.0))
        for value in (0.1, 1.0, 5.0):
            hist.observe(value)
        buckets = hist.summary()["buckets"]
        assert buckets == {"le_0.1": 1, "le_1": 1, "le_5": 1, "inf": 0}

    def test_histogram_bucket_counts_sum_to_count(self):
        registry = MetricsRegistry()
        hist = registry.histogram("sums", buckets=(0.5, 0.5, 2.0))
        samples = (0.0, 0.5, 0.5000001, 1.9, 2.0, 2.0000001, 100.0)
        for value in samples:
            hist.observe(value)
        summary = json.loads(registry.to_json())["histograms"]["sums"]
        assert summary["count"] == len(samples)
        assert sum(summary["buckets"].values()) == summary["count"]

    def test_histogram_duplicate_bounds_collapse(self):
        # A duplicated bound used to create a permanently empty shadow
        # bucket whose le_... key collided in the rendered JSON,
        # silently dropping counts; construction now dedupes.
        hist = Histogram("dup", threading.Lock(), buckets=(1.0, 1.0, 2.0))
        assert hist.buckets == (1.0, 2.0)
        hist.observe(1.0)
        hist.observe(1.5)
        buckets = hist.summary()["buckets"]
        assert buckets == {"le_1": 1, "le_2": 1, "inf": 0}
        assert sum(buckets.values()) == hist.count

    def test_histogram_rejects_non_finite_bounds(self):
        lock = threading.Lock()
        for bad in (float("nan"), float("inf"), float("-inf")):
            with pytest.raises(ValueError):
                Histogram("bad", lock, buckets=(0.1, bad))
        with pytest.raises(ValueError):
            Histogram("empty", lock, buckets=())

    def test_histogram_nan_sample_counts_in_overflow(self):
        # NaN compares false with every bound, so it deterministically
        # falls through to the overflow bucket — counted, not lost.
        hist = Histogram("nan", threading.Lock(), buckets=(1.0,))
        hist.observe(float("nan"))
        summary = hist.summary()
        assert summary["count"] == 1
        assert summary["buckets"]["inf"] == 1
        assert sum(summary["buckets"].values()) == summary["count"]


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------
class TestTracer:
    def test_spans_nest_and_export(self):
        tracer = Tracer()
        with tracer.span("campaign", task="RS"):
            with tracer.span("wave", wave=0):
                pass
            with tracer.span("wave", wave=1):
                pass
        roots = tracer.export()
        assert len(roots) == 1
        campaign = roots[0]
        assert campaign["name"] == "campaign"
        assert campaign["attributes"]["task"] == "RS"
        assert [child["name"] for child in campaign["children"]] == ["wave", "wave"]
        assert campaign["status"] == "ok"

    def test_span_records_error_status_and_reraises(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("expected")
        exported = tracer.export()[0]
        assert exported["status"] == "error"
        assert exported["attributes"]["error"] == "ValueError"

    def test_to_json_is_valid(self):
        tracer = Tracer()
        with tracer.span("a"):
            pass
        assert json.loads(tracer.to_json())[0]["name"] == "a"


# ----------------------------------------------------------------------
# thread-local attachment
# ----------------------------------------------------------------------
class TestAttachment:
    def test_attach_and_restore(self):
        telemetry = Telemetry()
        assert current_telemetry() is None
        with attached_telemetry(telemetry):
            assert current_telemetry() is telemetry
            inner = Telemetry()
            with attached_telemetry(inner):
                assert current_telemetry() is inner
            assert current_telemetry() is telemetry
        assert current_telemetry() is None


# ----------------------------------------------------------------------
# the contract: telemetry is bit-neutral
# ----------------------------------------------------------------------
def _fingerprintable(result):
    """Everything the bit-neutrality contract covers.

    Host wall times are measurements of the run, not of the simulated
    program — they differ between any two executions and are excluded.
    """
    def deterministic(record):
        entry = record.to_dict()
        entry.pop("wall_time_s")
        return entry

    return (
        result.execution_times,
        result.seeds,
        [deterministic(record) for record in result.records],
        result.instructions,
    )


class TestTelemetryBitNeutrality:
    @pytest.mark.parametrize("engine", ["scalar", "batch", "sharded"])
    def test_sample_identical_with_and_without_telemetry(
        self, tiny_config, engine
    ):
        trace = make_stream_trace(words=32, sweeps=2)
        scenario = Scenario.efl(mid=100)
        kwargs = dict(master_seed=11, engine=engine)
        if engine == "sharded":
            kwargs["workers"] = 2
        bare = collect_execution_times(
            trace, tiny_config, scenario, 16, **kwargs
        )
        telemetry = Telemetry()
        observed = collect_execution_times(
            trace, tiny_config, scenario, 16, telemetry=telemetry, **kwargs
        )
        assert _fingerprintable(observed) == _fingerprintable(bare)

    def test_metrics_account_for_every_run(self, tiny_config):
        trace = make_stream_trace(words=32, sweeps=2)
        telemetry = Telemetry()
        result = collect_execution_times(
            trace, tiny_config, Scenario.efl(mid=100), 12,
            engine="scalar", telemetry=telemetry,
        )
        assert result.runs == 12
        assert telemetry.metrics.value("runs_simulated") == 12
        assert telemetry.metrics.value("campaigns_started") == 1
        assert telemetry.metrics.value("campaigns_completed") == 1
        hist = telemetry.metrics.histogram("run_wall_time_s")
        assert hist.count == 12

    def test_campaign_span_wraps_execution(self, tiny_config):
        trace = make_stream_trace(words=32, sweeps=2)
        telemetry = Telemetry()
        collect_execution_times(
            trace, tiny_config, Scenario.efl(mid=100), 4,
            engine="batch", telemetry=telemetry, job_id="job-000042",
        )
        roots = telemetry.tracer.export()
        assert len(roots) == 1
        campaign = roots[0]
        assert campaign["name"] == "campaign"
        assert campaign["attributes"]["job"] == "job-000042"
        assert campaign["attributes"]["runs"] == 4
        # The batch engine records its sweeps as children.
        assert any(
            child["name"] == "batch_sweep" for child in campaign["children"]
        )

    def test_detached_campaign_leaves_no_thread_state(self, tiny_config):
        trace = make_stream_trace(words=32, sweeps=2)
        collect_execution_times(
            trace, tiny_config, Scenario.efl(mid=100), 2,
            engine="scalar", telemetry=Telemetry(),
        )
        assert current_telemetry() is None

    def test_telemetry_logs_campaign_lifecycle(self, tiny_config):
        trace = make_stream_trace(words=32, sweeps=2)
        stream = io.StringIO()
        telemetry = Telemetry(
            logger=StructuredLogger(stream=stream, level="info", fmt="json")
        )
        collect_execution_times(
            trace, tiny_config, Scenario.efl(mid=100), 3,
            engine="scalar", telemetry=telemetry,
        )
        events = [json.loads(line)["event"]
                  for line in stream.getvalue().strip().splitlines()]
        assert "campaign_start" in events
        assert "campaign_end" in events
