"""Tests for platform construction and the shared memory path."""

from __future__ import annotations

import pytest

from repro.core.config import OperationMode
from repro.errors import ConfigurationError
from repro.sim.config import Scenario, SystemConfig
from repro.sim.memorypath import MemoryPath
from repro.sim.platform import (
    FullySharedLLCView,
    PartitionedLLCView,
    build_platform,
)


def small_config(**overrides):
    params = dict(l1_size=256, llc_size=2048)
    params.update(overrides)
    return SystemConfig(**params)


class TestBuildPlatform:
    def test_efl_platform(self):
        platform = build_platform(small_config(), Scenario.efl(250), seed=1)
        assert platform.efl is not None
        assert isinstance(platform.llc_view, FullySharedLLCView)
        assert len(platform.il1s) == 4
        assert len(platform.dl1s) == 4

    def test_cp_platform(self):
        platform = build_platform(
            small_config(),
            Scenario.cache_partitioning(2, mode=OperationMode.DEPLOYMENT),
            seed=1,
        )
        assert platform.efl is None
        assert isinstance(platform.llc_view, PartitionedLLCView)

    def test_cp_analysis_only_materialises_analysed_core(self):
        platform = build_platform(
            small_config(), Scenario.cache_partitioning(4), seed=1
        )
        view = platform.llc_view
        assert view.partitioned.partition.counts == {0: 4}

    def test_cp_deployment_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            build_platform(
                small_config(),
                Scenario.cache_partitioning(4, mode=OperationMode.DEPLOYMENT),
                seed=1,
            )

    def test_fresh_seed_fresh_riis(self):
        a = build_platform(small_config(), Scenario.efl(250), seed=1)
        b = build_platform(small_config(), Scenario.efl(250), seed=2)
        assert a.llc.placement.rii != b.llc.placement.rii

    def test_same_seed_reproducible(self):
        a = build_platform(small_config(), Scenario.efl(250), seed=9)
        b = build_platform(small_config(), Scenario.efl(250), seed=9)
        assert a.llc.placement.rii == b.llc.placement.rii
        assert a.il1s[0].placement.rii == b.il1s[0].placement.rii

    def test_caches_have_distinct_riis(self):
        platform = build_platform(small_config(), Scenario.efl(250), seed=3)
        riis = [c.placement.rii for c in platform.il1s + platform.dl1s]
        riis.append(platform.llc.placement.rii)
        assert len(set(riis)) == len(riis)

    def test_td_platform(self):
        config = small_config(placement="modulo", replacement="lru")
        platform = build_platform(config, Scenario.uncontrolled(), seed=1)
        assert platform.llc.placement.is_randomised is False


class TestMemoryPathDeployment:
    def make(self, scenario=None):
        scenario = scenario or Scenario.efl(250, mode=OperationMode.DEPLOYMENT)
        platform = build_platform(small_config(), scenario, seed=5)
        return platform, MemoryPath(platform)

    def test_llc_hit_latency(self):
        platform, path = self.make(Scenario.uncontrolled())
        done = path.fill(0, line=7, time=100)
        # miss first: bus(2) + lookup(10) + memory via controller.
        assert done == 100 + 2 + 10 + 100
        done2 = path.fill(0, line=7, time=300)
        assert done2 == 300 + 2 + 10
        assert path.llc_hits == 1
        assert path.llc_misses == 1

    def test_efl_deployment_throttles_misses(self):
        platform, path = self.make()
        t = 0
        completions = []
        for line in range(40):
            t = path.fill(0, line, t)
            completions.append(t)
        gaps = [b - a for a, b in zip(completions, completions[1:])]
        # EoM misses with MID 250: spacing is at least the miss cost
        # and is stretched by EAB stalls for short draws; the mean gap
        # must exceed the bare miss cost.
        assert sum(gaps) / len(gaps) > 112
        assert platform.efl.stall_cycles(0) > 0

    def test_dirty_llc_victims_written_back(self):
        platform, path = self.make(Scenario.uncontrolled())
        # Fill the tiny LLC with written lines until evictions happen.
        t = 0
        for line in range(400):
            t = path.fill(0, line, t, write=True)
        assert platform.memory.writes > 0

    def test_l1_writeback_hit_marks_dirty(self):
        platform, path = self.make(Scenario.uncontrolled())
        t = path.fill(0, 7, 0)
        path.l1_writeback(0, 7, t)
        # On eventual eviction the line must write back to memory.
        before = platform.memory.writes
        platform.llc.invalidate(7)
        assert platform.llc.stats.writebacks > 0 or platform.memory.writes >= before

    def test_l1_writeback_miss_goes_to_memory(self):
        platform, path = self.make(Scenario.uncontrolled())
        before = platform.memory.writes
        path.l1_writeback(0, 999, 50)
        assert platform.memory.writes == before + 1

    def test_negative_time_rejected(self):
        _platform, path = self.make()
        import pytest as _pytest
        with _pytest.raises(Exception):
            path.fill(0, 1, -5)


class TestMemoryPathAnalysis:
    def test_worst_case_charges(self):
        config = small_config()
        platform = build_platform(config, Scenario.efl(250), seed=5)
        path = MemoryPath(platform)
        done = path.fill(0, line=7, time=0)
        # bus worst case (4 * 2) + lookup 10 + memory worst case (400),
        # plus any EAB stall (none for the very first eviction).
        assert done == 8 + 10 + 400

    def test_analysis_hits_cheaper(self):
        platform = build_platform(small_config(), Scenario.efl(250), seed=5)
        path = MemoryPath(platform)
        t = path.fill(0, 7, 0)
        done = path.fill(0, 7, t)
        assert done - t == 8 + 10

    def test_crg_interference_applied(self):
        platform = build_platform(small_config(), Scenario.efl(250), seed=5)
        path = MemoryPath(platform)
        path.fill(0, 1, 0)
        path.fill(0, 2, 100_000)
        assert platform.llc.stats.forced_evictions > 0

    def test_custom_penalties(self):
        config = small_config(analysis_bus_penalty=0, analysis_memory_penalty=0)
        platform = build_platform(config, Scenario.efl(250), seed=5)
        path = MemoryPath(platform)
        done = path.fill(0, line=7, time=0)
        assert done == 2 + 10 + 100

    def test_cp_analysis_sees_no_interference(self):
        platform = build_platform(
            small_config(), Scenario.cache_partitioning(2), seed=5
        )
        path = MemoryPath(platform)
        path.fill(0, 1, 0)
        path.fill(0, 2, 100_000)
        assert platform.llc.stats.forced_evictions == 0
