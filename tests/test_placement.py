"""Tests for modulo and random placement policies."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.mem.placement import ModuloPlacement, RandomPlacement, make_placement
from repro.utils.hashing import ParametricHash


class TestModuloPlacement:
    def test_modulo(self):
        p = ModuloPlacement(64)
        assert p.set_index(0) == 0
        assert p.set_index(63) == 63
        assert p.set_index(64) == 0
        assert p.set_index(130) == 2

    def test_not_randomised(self):
        assert ModuloPlacement(4).is_randomised is False

    def test_rejects_bad_sets(self):
        with pytest.raises(ConfigurationError):
            ModuloPlacement(0)


class TestRandomPlacement:
    def test_randomised_flag(self):
        assert RandomPlacement(4).is_randomised is True

    def test_deterministic_under_fixed_rii(self):
        p = RandomPlacement(64, rii=5)
        assert p.set_index(1000) == p.set_index(1000)

    def test_matches_parametric_hash(self):
        """The inlined hash must equal the reference implementation."""
        p = RandomPlacement(64, rii=1234)
        h = ParametricHash(64)
        for line in range(0, 5000, 7):
            assert p.set_index(line) == h.set_index(line, 1234)

    def test_set_rii_changes_mapping(self):
        p = RandomPlacement(256, rii=1)
        before = [p.set_index(line) for line in range(200)]
        p.set_rii(2)
        after = [p.set_index(line) for line in range(200)]
        moved = sum(1 for x, y in zip(before, after) if x != y)
        assert moved > 150

    def test_in_range(self):
        p = RandomPlacement(32, rii=9)
        for line in range(1000):
            assert 0 <= p.set_index(line) < 32

    def test_rejects_negative_rii(self):
        with pytest.raises(ConfigurationError):
            RandomPlacement(4, rii=-1)
        p = RandomPlacement(4)
        with pytest.raises(ConfigurationError):
            p.set_rii(-3)


class TestFactory:
    def test_modulo(self):
        assert isinstance(make_placement("modulo", 8), ModuloPlacement)

    def test_random(self):
        p = make_placement("random", 8, rii=3)
        assert isinstance(p, RandomPlacement)
        assert p.rii == 3

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_placement("hash", 8)
