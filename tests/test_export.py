"""Tests for CSV export of experiment results."""

from __future__ import annotations

import csv
import io

import pytest

from repro.analysis.experiments import (
    Fig3Result,
    Fig4Result,
    IIDComplianceResult,
    IIDRow,
    WorkloadComparison,
)
from repro.analysis.export import (
    write_campaign_csv,
    write_campaign_json,
    write_fig3_csv,
    write_fig4_csv,
    write_iid_csv,
)
from repro.analysis.metrics import summarise_improvements
from repro.sim.backend import RunRecord
from repro.sim.campaign import CampaignResult


@pytest.fixture
def campaign_result():
    records = [
        RunRecord(index=i, seed=1000 + i, cycles=5000 + 10 * i,
                  instructions=400, llc_hits=30, llc_misses=12,
                  llc_forced_evictions=7, efl_stall_cycles=90,
                  efl_evictions=12, memory_reads=12, memory_writes=1,
                  wall_time_s=0.02)
        for i in range(3)
    ]
    return CampaignResult(
        task="ID", scenario_label="EFL500",
        execution_times=[r.cycles for r in records], instructions=400,
        runs=3, master_seed=9, seeds=[r.seed for r in records],
        records=records, backend="process[2]", wall_time_s=0.06,
    )


class TestCampaignCsv:
    def test_rows_and_header(self, campaign_result):
        stream = io.StringIO()
        count = write_campaign_csv(campaign_result, stream)
        assert count == 3
        rows = list(csv.reader(io.StringIO(stream.getvalue())))
        assert rows[0][:6] == ["task", "scenario", "run_index", "seed",
                               "cycles", "instructions"]
        assert rows[1][0] == "ID"
        assert rows[1][3] == hex(1000)
        assert rows[3][4] == "5020"


class TestCampaignJson:
    def test_round_trips_through_from_dict(self, campaign_result):
        import json

        stream = io.StringIO()
        count = write_campaign_json(campaign_result, stream)
        assert count == 3
        payload = json.loads(stream.getvalue())
        rebuilt = CampaignResult.from_dict(payload)
        assert rebuilt.to_dict() == campaign_result.to_dict()
        assert rebuilt.execution_times == campaign_result.execution_times
        assert rebuilt.records[1].seed == 1001

    def test_payload_matches_to_dict(self, campaign_result):
        import json

        stream = io.StringIO()
        write_campaign_json(campaign_result, stream)
        assert json.loads(stream.getvalue()) == campaign_result.to_dict()

    def test_from_dict_rejects_missing_fields(self, campaign_result):
        payload = campaign_result.to_dict()
        del payload["seeds"]
        with pytest.raises(KeyError):
            CampaignResult.from_dict(payload)


@pytest.fixture
def iid_result():
    return IIDComplianceResult(
        mid=500,
        rows=[
            IIDRow("ID", 100, -0.5, 0.7, True),
            IIDRow("MA", 100, 1.2, 0.3, True),
        ],
    )


@pytest.fixture
def fig3_result():
    return Fig3Result(
        baseline_label="CP2",
        setups=["EFL250", "CP2"],
        bench_ids=["ID", "MA"],
        pwcet={
            "ID": {"EFL250": 900.0, "CP2": 1000.0},
            "MA": {"EFL250": 2100.0, "CP2": 2000.0},
        },
        normalised={
            "ID": {"EFL250": 0.9, "CP2": 1.0},
            "MA": {"EFL250": 1.05, "CP2": 1.0},
        },
    )


@pytest.fixture
def fig4_result():
    comparisons = [
        WorkloadComparison(
            workload=("ID", "MA", "CN", "AI"),
            cp_partition=(2, 2, 2, 2),
            cp_wgipc=0.1,
            efl_mid=250,
            efl_wgipc=0.12,
            wgipc_improvement=0.2,
            cp_waipc=0.5,
            efl_waipc=0.6,
            waipc_improvement=0.2,
        ),
        WorkloadComparison(
            workload=("RS", "RS", "PU", "A2"),
            cp_partition=(4, 2, 1, 1),
            cp_wgipc=0.2,
            efl_mid=500,
            efl_wgipc=0.18,
            wgipc_improvement=-0.1,
        ),
    ]
    return Fig4Result(
        comparisons=comparisons,
        wgipc_summary=summarise_improvements([0.2, -0.1]),
        waipc_summary=None,
    )


class TestIIDExport:
    def test_rows_and_header(self, iid_result):
        stream = io.StringIO()
        assert write_iid_csv(iid_result, stream) == 2
        rows = list(csv.reader(io.StringIO(stream.getvalue())))
        assert rows[0][0] == "benchmark"
        assert rows[1][0] == "ID"
        assert rows[2][0] == "MA"
        assert rows[1][4] == "1"  # passed


class TestFig3Export:
    def test_long_format(self, fig3_result):
        stream = io.StringIO()
        assert write_fig3_csv(fig3_result, stream) == 4
        rows = list(csv.reader(io.StringIO(stream.getvalue())))
        assert rows[0][3] == "normalised_to_CP2"
        assert ["ID", "EFL250", "900.0", "0.900000"] == rows[1]

    def test_round_trips_through_csv_reader(self, fig3_result):
        stream = io.StringIO()
        write_fig3_csv(fig3_result, stream)
        rows = list(csv.DictReader(io.StringIO(stream.getvalue())))
        normalised = {
            (r["benchmark"], r["setup"]): float(r["normalised_to_CP2"])
            for r in rows
        }
        assert normalised[("MA", "EFL250")] == pytest.approx(1.05)


class TestFig4Export:
    def test_rows(self, fig4_result):
        stream = io.StringIO()
        assert write_fig4_csv(fig4_result, stream) == 2
        rows = list(csv.reader(io.StringIO(stream.getvalue())))
        assert rows[1][0] == "ID+MA+CN+AI"
        assert rows[1][1] == "2-2-2-2"
        assert rows[1][3] == "250"

    def test_missing_average_fields_empty(self, fig4_result):
        stream = io.StringIO()
        write_fig4_csv(fig4_result, stream)
        rows = list(csv.reader(io.StringIO(stream.getvalue())))
        assert rows[2][6] == "" and rows[2][7] == "" and rows[2][8] == ""
