"""Chaos tests: deterministic fault injection against the run engine.

The resilience guarantee under test: a campaign executed under
injected worker crashes, hangs, slowdowns and result corruption must
complete via retries with ``execution_times`` bit-identical to a
fault-free serial campaign — and deterministic simulation failures
must surface after exactly one attempt, never retried.
"""

from __future__ import annotations

import pytest

from repro.errors import (
    ERROR_KIND_DETERMINISTIC,
    ERROR_KIND_TRANSIENT,
    CampaignRunError,
    ConfigurationError,
    ResultIntegrityError,
    RunTimeoutError,
    TransientRunError,
    WorkerCrashError,
    classify_exception,
)
from repro.sim.backend import (
    ProcessPoolBackend,
    RetryPolicy,
    RunObserver,
    SerialBackend,
)
from repro.sim.campaign import collect_execution_times
from repro.sim.config import Scenario, SystemConfig
from repro.sim.faults import FAULT_KINDS, FaultInjectingBackend, FaultPlan
from repro.sim.simulator import RunRequest, raise_cycle_budget_exceeded
from repro.utils.rng import derive_seeds
from tests.conftest import make_stream_trace

CONFIG = SystemConfig(l1_size=256, llc_size=2048)
SCENARIO = Scenario.efl(250)

#: Fast retry policy for tests (no real backoff sleeps).
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_s=0.0)


class TestErrorClassification:
    def test_transient_exceptions(self):
        assert classify_exception(TransientRunError("x")) == ERROR_KIND_TRANSIENT
        assert classify_exception(WorkerCrashError("x")) == ERROR_KIND_TRANSIENT
        assert classify_exception(ResultIntegrityError("x")) == ERROR_KIND_TRANSIENT
        assert (
            classify_exception(RunTimeoutError("wall clock", transient=True))
            == ERROR_KIND_TRANSIENT
        )

    def test_deterministic_exceptions(self):
        assert classify_exception(ValueError("x")) == ERROR_KIND_DETERMINISTIC
        assert (
            classify_exception(RunTimeoutError("cycle budget", transient=False))
            == ERROR_KIND_DETERMINISTIC
        )


class TestFaultPlan:
    def test_deterministic_across_instances(self):
        a = FaultPlan(seed=11, crash_rate=0.2, hang_rate=0.2, corrupt_rate=0.2)
        b = FaultPlan(seed=11, crash_rate=0.2, hang_rate=0.2, corrupt_rate=0.2)
        assert [a.fault_for(i, 1) for i in range(100)] == [
            b.fault_for(i, 1) for i in range(100)
        ]

    def test_different_seeds_differ(self):
        a = FaultPlan(seed=1, crash_rate=0.5)
        b = FaultPlan(seed=2, crash_rate=0.5)
        assert [a.fault_for(i, 1) for i in range(64)] != [
            b.fault_for(i, 1) for i in range(64)
        ]

    def test_attempts_beyond_cap_are_fault_free(self):
        plan = FaultPlan(seed=3, crash_rate=1.0, max_faulty_attempts=2)
        assert plan.fault_for(0, 1) == "crash"
        assert plan.fault_for(0, 2) == "crash"
        assert plan.fault_for(0, 3) is None

    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=0, crash_rate=-0.1)
        with pytest.raises(ConfigurationError):
            FaultPlan(seed=0, crash_rate=0.6, hang_rate=0.6)

    def test_fault_counts_cover_all_kinds(self):
        plan = FaultPlan(
            seed=5, crash_rate=0.2, hang_rate=0.2, slow_rate=0.2,
            corrupt_rate=0.2,
        )
        counts = plan.fault_counts(200)
        assert set(counts) == set(FAULT_KINDS)
        assert all(counts[kind] > 0 for kind in FAULT_KINDS)


class TestSerialFaultInjection:
    """In-process injection: process faults arrive as their classified
    exceptions and the serial retry loop recovers them."""

    def test_transient_faults_retried_to_identical_sample(self, stream_trace):
        reference = collect_execution_times(
            stream_trace, CONFIG, SCENARIO, runs=30, master_seed=21,
        )
        plan = FaultPlan(
            seed=77, crash_rate=0.15, hang_rate=0.1, slow_rate=0.1,
            corrupt_rate=0.15, slow_s=0.0,
        )
        assert sum(plan.fault_counts(30).values()) > 0
        chaotic = collect_execution_times(
            stream_trace, CONFIG, SCENARIO, runs=30, master_seed=21,
            backend=FaultInjectingBackend(SerialBackend(retry=FAST_RETRY), plan),
        )
        assert chaotic.execution_times == reference.execution_times
        assert chaotic.retried_runs > 0

    def test_corruption_detected_and_retried(self, stream_trace):
        plan = FaultPlan(seed=0, corrupt_rate=1.0)
        backend = FaultInjectingBackend(SerialBackend(retry=FAST_RETRY), plan)
        request = RunRequest.isolation(stream_trace, CONFIG, SCENARIO, 42)
        outcome = backend.execute([request])[0]
        # Attempt 1 was corrupted in flight and caught by the checksum;
        # attempt 2 runs fault-free and succeeds.
        assert not outcome.failed
        assert outcome.attempts == 2

    def test_exhausted_retries_surface_as_transient(self, stream_trace):
        plan = FaultPlan(seed=0, crash_rate=1.0, max_faulty_attempts=99)
        backend = FaultInjectingBackend(SerialBackend(retry=FAST_RETRY), plan)
        request = RunRequest.isolation(stream_trace, CONFIG, SCENARIO, 42)
        outcome = backend.execute([request])[0]
        assert outcome.failed
        assert outcome.error_kind == ERROR_KIND_TRANSIENT
        assert outcome.attempts == FAST_RETRY.max_attempts
        with pytest.raises(CampaignRunError) as excinfo:
            collect_execution_times(
                stream_trace, CONFIG, SCENARIO, runs=2, master_seed=1,
                backend=backend,
            )
        assert "transient after retries" in str(excinfo.value)


class TestCycleBudget:
    def test_budget_exceeded_is_deterministic(self):
        with pytest.raises(RunTimeoutError) as excinfo:
            raise_cycle_budget_exceeded("task", 0, 1001, 5, 1000)
        assert excinfo.value.transient is False

    def test_generous_budget_changes_nothing(self, stream_trace):
        unbounded = collect_execution_times(
            stream_trace, CONFIG, SCENARIO, runs=4, master_seed=9,
        )
        bounded = collect_execution_times(
            stream_trace, CONFIG, SCENARIO, runs=4, master_seed=9,
            cycle_budget=10**9,
        )
        assert bounded.execution_times == unbounded.execution_times

    def test_tight_budget_fails_without_retry(self, stream_trace):
        with pytest.raises(CampaignRunError) as excinfo:
            collect_execution_times(
                stream_trace, CONFIG, SCENARIO, runs=2, master_seed=9,
                backend=SerialBackend(retry=FAST_RETRY), cycle_budget=10,
            )
        failures = excinfo.value.failures
        assert all(kind == ERROR_KIND_DETERMINISTIC
                   for _i, _s, _m, kind in failures)
        assert all("cycle budget" in message
                   for _i, _s, message, _k in failures)


class CrashCounter(RunObserver):
    """Counts resilience events during a chaos campaign."""

    def __init__(self):
        self.crashes = 0
        self.retries = 0

    def on_worker_crash(self, dead_workers):
        self.crashes += dead_workers

    def on_retry(self, index, seed, attempt, error):
        self.retries += 1


class TestPoolChaos:
    """The acceptance gate: a 200-run process-pool campaign under real
    worker crashes, hangs past the watchdog and corrupted results must
    complete via retries, bit-identical to a fault-free serial run."""

    def test_chaos_campaign_matches_fault_free_serial(self):
        trace = make_stream_trace("chaos", 300)
        runs = 200
        reference = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=runs, master_seed=0xC0FFEE,
        )
        # crash + hang + slow cover >= 20% of first attempts, plus
        # corrupted results on top; every kind must actually be planned.
        plan = FaultPlan(
            seed=0xBAD5EED, crash_rate=0.12, hang_rate=0.05, slow_rate=0.10,
            corrupt_rate=0.05, slow_s=0.01, hang_s=15.0,
        )
        counts = plan.fault_counts(runs)
        assert all(counts[kind] > 0 for kind in FAULT_KINDS)
        assert (counts["crash"] + counts["hang"] + counts["slow"]) / runs >= 0.20
        events = CrashCounter()
        backend = FaultInjectingBackend(
            ProcessPoolBackend(
                workers=2, chunk_size=4, force_pool=True,
                retry=RetryPolicy(max_attempts=4, backoff_s=0.01),
                run_timeout_s=2.0,
            ),
            plan,
        )
        chaotic = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=runs, master_seed=0xC0FFEE,
            backend=backend, observer=events,
        )
        assert chaotic.execution_times == reference.execution_times
        assert chaotic.seeds == reference.seeds
        assert chaotic.instructions == reference.instructions
        assert chaotic.retried_runs > 0
        assert events.retries > 0

    def test_sharded_shard_kill_matches_fault_free_serial(self):
        # Sharded blast radius: a "crash" fires before its shard's
        # lock-step sweep, so the whole shard is lost and re-dispatched;
        # a "corrupt" in a surviving shard mutates only its own lane and
        # is retried alone.  Either way the final sample must equal the
        # fault-free serial reference bit for bit.
        from repro.sim.batch import ShardedBatchBackend, shard_lanes

        trace = make_stream_trace("shardchaos", 200)
        runs = 40
        master_seed = 0xFEED
        reference = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=runs, master_seed=master_seed,
            engine="scalar",
        )
        plan = FaultPlan(seed=3, crash_rate=0.08, corrupt_rate=0.10)
        crashed = plan.fault_indices("crash", runs)
        corrupt = plan.fault_indices("corrupt", runs)
        assert crashed and corrupt  # the plan must exercise both paths
        # Predict the blast radius: every lane sharing a shard with a
        # crashing index is lost with it, corrupt lanes retry alone.
        jobs = [(index, seed, 1)
                for index, seed in enumerate(derive_seeds(master_seed, runs))]
        doomed = set(corrupt)
        for shard in shard_lanes(jobs, 2):
            if any(index in crashed for index, _seed, _attempt in shard):
                doomed.update(index for index, _seed, _attempt in shard)

        class RetryCollector(CrashCounter):
            def __init__(self):
                super().__init__()
                self.indices = set()

            def on_retry(self, index, seed, attempt, error):
                super().on_retry(index, seed, attempt, error)
                self.indices.add(index)

        events = RetryCollector()
        backend = FaultInjectingBackend(
            ShardedBatchBackend(
                workers=2, force_pool=True,
                retry=RetryPolicy(max_attempts=4, backoff_s=0.01),
            ),
            plan,
        )
        chaotic = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=runs, master_seed=master_seed,
            backend=backend, observer=events,
        )
        assert chaotic.execution_times == reference.execution_times
        assert chaotic.seeds == reference.seeds
        assert chaotic.retried_runs > 0
        assert events.crashes >= 1
        assert events.retries >= len(doomed)
        assert events.indices >= doomed

    def test_pool_deterministic_failure_not_retried(self, stream_trace):
        # A tight cycle budget fails every run identically; the pool
        # must surface it after exactly one attempt despite its retry
        # policy being armed.
        template = RunRequest.isolation(
            stream_trace, CONFIG, SCENARIO, 0, cycle_budget=10
        )
        requests = [template.with_run(index, seed)
                    for index, seed in enumerate(derive_seeds(3, 4))]
        outcomes = ProcessPoolBackend(
            workers=2, force_pool=True,
            retry=RetryPolicy(max_attempts=4, backoff_s=0.0),
        ).execute(requests)
        assert all(outcome.failed for outcome in outcomes)
        assert all(outcome.error_kind == ERROR_KIND_DETERMINISTIC
                   for outcome in outcomes)
        assert all(outcome.attempts == 1 for outcome in outcomes)
