"""Tests for the analytical TR-cache miss-probability models."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.mem.cache import Cache, CacheGeometry
from repro.mem.placement import RandomPlacement
from repro.mem.replacement import EvictOnMissRandom
from repro.pta.eq1 import (
    expected_miss_ratio,
    miss_probability,
    miss_probability_exact,
    poisson_overflow_fraction,
    sequence_miss_probabilities,
    steady_state_miss_ratio,
)
from repro.utils.rng import MultiplyWithCarry


class TestPaperEquation1:
    def test_zero_interference_never_misses(self):
        assert miss_probability(64, 8, []) == 0.0

    def test_fully_associative_term_exact(self):
        """S=1: Equation 1 reduces to 1 - ((W-1)/W)^k, which is exact."""
        p = miss_probability(1, 4, [1.0, 1.0])
        assert p == pytest.approx(1 - (3 / 4) ** 2)
        assert p == pytest.approx(miss_probability_exact(1, 4, [1.0, 1.0]))

    def test_direct_mapped_term_exact(self):
        """W=1: only placement saves A; exact again."""
        p = miss_probability(64, 1, [1.0])
        assert p == pytest.approx(1 - (63 / 64))
        assert p == pytest.approx(miss_probability_exact(64, 1, [1.0]))

    def test_single_set_single_way(self):
        assert miss_probability(1, 1, [1.0]) == 1.0
        assert miss_probability(1, 1, []) == 0.0

    def test_monotone_in_interference(self):
        probs = [miss_probability(64, 8, [1.0] * k) for k in range(0, 50, 5)]
        assert probs == sorted(probs)

    def test_more_ways_reduce_miss(self):
        k = [1.0] * 8
        assert miss_probability(64, 8, k) < miss_probability(64, 2, k)

    def test_overapproximates_exact_for_set_associative(self):
        """The published product form double-counts: it upper-bounds the
        exact independent-collision value for set-associative shapes."""
        for k in (4, 16, 64, 256):
            probs = [1.0] * k
            assert miss_probability(64, 4, probs) >= miss_probability_exact(
                64, 4, probs
            )

    def test_rejects_bad_probability(self):
        with pytest.raises(AnalysisError):
            miss_probability(64, 8, [1.5])

    @given(
        sets=st.sampled_from([1, 8, 64, 512]),
        ways=st.sampled_from([1, 2, 4, 8]),
        probs=st.lists(st.floats(min_value=0, max_value=1), max_size=30),
    )
    @settings(max_examples=100)
    def test_result_is_probability(self, sets, ways, probs):
        assert 0.0 <= miss_probability(sets, ways, probs) <= 1.0
        assert 0.0 <= miss_probability_exact(sets, ways, probs) <= 1.0


class TestExactModelAgainstSimulation:
    """The exact model must match simulation in Equation 1's scenario:
    empty cache, access A, then k distinct lines, then A again."""

    @pytest.mark.parametrize("k", [8, 32, 128])
    def test_single_reuse(self, k):
        sets, ways = 64, 4
        predicted = miss_probability_exact(sets, ways, [1.0] * k)
        trials = 3000
        misses = 0
        for seed in range(trials):
            geometry = CacheGeometry(size_bytes=sets * ways * 16, line_size=16,
                                     ways=ways)
            cache = Cache(
                geometry,
                RandomPlacement(sets, rii=seed + 1),
                EvictOnMissRandom(MultiplyWithCarry(seed)),
            )
            cache.access(0)
            for line in range(1, k + 1):
                cache.access(line)
            if not cache.access(0).hit:
                misses += 1
        measured = misses / trials
        assert measured == pytest.approx(predicted, abs=0.03)


class TestPoissonOverflow:
    def test_zero_load(self):
        assert poisson_overflow_fraction(0.0, 4) == 0.0

    def test_monotone_in_load(self):
        fractions = [poisson_overflow_fraction(l, 2) for l in (0.5, 1.0, 2.0, 4.0)]
        assert fractions == sorted(fractions)

    def test_monotone_in_ways(self):
        assert poisson_overflow_fraction(2.0, 8) < poisson_overflow_fraction(2.0, 1)

    def test_heavy_load_approaches_one(self):
        assert poisson_overflow_fraction(100.0, 1) > 0.95

    def test_negative_load_rejected(self):
        with pytest.raises(AnalysisError):
            poisson_overflow_fraction(-1.0, 2)


class TestSteadyStateModel:
    def test_first_sweep_cold(self):
        probs = sequence_miss_probabilities(64, 4, working_set=16, sweeps=5)
        assert probs[0] == 1.0

    def test_small_working_set_converges_low(self):
        probs = sequence_miss_probabilities(512, 8, working_set=32, sweeps=30)
        assert probs[-1] < 0.01

    def test_oversized_working_set_stays_high(self):
        assert steady_state_miss_ratio(8, 2, working_set=64) > 0.5

    def test_length(self):
        assert len(sequence_miss_probabilities(64, 4, 16, 12)) == 12

    @pytest.mark.parametrize("working_set,tolerance", [(16, 0.04), (32, 0.04),
                                                       (96, 0.08)])
    def test_against_simulated_sweeps(self, working_set, tolerance):
        sets, ways, sweeps = 64, 4, 40
        predicted = expected_miss_ratio(sets, ways, working_set, sweeps)
        measured = []
        for seed in range(30):
            geometry = CacheGeometry(
                size_bytes=sets * ways * 16, line_size=16, ways=ways
            )
            cache = Cache(
                geometry,
                RandomPlacement(sets, rii=seed * 31 + 1),
                EvictOnMissRandom(MultiplyWithCarry(seed)),
            )
            for _sweep in range(sweeps):
                for line in range(working_set):
                    cache.access(line)
            measured.append(cache.stats.miss_ratio)
        mean_measured = sum(measured) / len(measured)
        assert mean_measured == pytest.approx(predicted, abs=tolerance)
