"""Bit-exactness tests for the vectorised PRNG / hashing primitives.

The batch engine's whole contract rests on these: every lane of
:class:`~repro.utils.rng.MWCArray` must reproduce its scalar
:class:`~repro.utils.rng.MultiplyWithCarry` twin draw for draw, and the
vectorised SplitMix64 / parametric hash must match their scalar
counterparts on every input.  Any drift here silently corrupts a whole
campaign's sample, so the pins are long (10k draws) and cover the
degenerate corners of the seed space.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.utils.hashing import ParametricHash, set_index_array
from repro.utils.rng import (
    MWC_MULTIPLIER,
    MWCArray,
    MultiplyWithCarry,
    SplitMix64,
    splitmix64_draw,
    splitmix64_mix,
)

#: Corners of the 64-bit seed space plus values that stress the seed
#: whitening: 0 (all-zero state input), 1, the 32-bit boundary, the
#: 64-bit ceiling, and the MWC multiplier itself.
EDGE_SEEDS = [0, 1, 2, 0xFFFFFFFF, 0x100000000, 2**64 - 1, MWC_MULTIPLIER, 42]


class TestSplitMix64Vectorised:
    def test_mix_matches_scalar_mixer(self):
        values = np.array(
            [0, 1, 0xFFFFFFFF, 2**63, 2**64 - 1, 0x9E3779B97F4A7C15],
            dtype=np.uint64,
        )
        from repro.utils.hashing import _mix64

        for value in values:
            assert int(splitmix64_mix(np.array([value], dtype=np.uint64))[0]) == \
                _mix64(int(value))

    def test_draw_matches_sequential_stream(self):
        seeds = np.array(EDGE_SEEDS, dtype=np.uint64)
        streams = [SplitMix64(int(seed)) for seed in seeds]
        for k in range(1, 51):
            expected = [stream.next_u64() for stream in streams]
            drawn = splitmix64_draw(seeds, k)
            assert [int(v) for v in drawn] == expected

    def test_draws_are_one_based(self):
        with pytest.raises(ConfigurationError):
            splitmix64_draw(np.array([1], dtype=np.uint64), 0)

    @given(seed=st.integers(min_value=0, max_value=2**64 - 1),
           k=st.integers(min_value=1, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_any_draw_of_any_stream(self, seed, k):
        stream = SplitMix64(seed)
        for _ in range(k - 1):
            stream.next_u64()
        drawn = splitmix64_draw(np.array([seed], dtype=np.uint64), k)
        assert int(drawn[0]) == stream.next_u64()


class TestMWCArrayBitExact:
    def test_10k_draws_match_scalar_lanes(self):
        seeds = np.array(EDGE_SEEDS, dtype=np.uint64)
        array = MWCArray(seeds)
        scalars = [MultiplyWithCarry(int(seed)) for seed in seeds]
        for _ in range(10_000):
            drawn = array.next_u32()
            assert [int(v) for v in drawn] == [rng.next_u32() for rng in scalars]
        x, c = array.state()
        assert [(int(a), int(b)) for a, b in zip(x, c)] == \
            [rng.state() for rng in scalars]

    def test_masked_draws_preserve_per_lane_history(self):
        # Lanes draw under rotating masks; each lane must still see
        # exactly its scalar twin's stream, in order.
        seeds = np.array(EDGE_SEEDS, dtype=np.uint64)
        lanes = len(EDGE_SEEDS)
        array = MWCArray(seeds)
        scalars = [MultiplyWithCarry(int(seed)) for seed in seeds]
        for round_index in range(300):
            mask = np.array(
                [(lane + round_index) % 3 != 0 for lane in range(lanes)], dtype=bool
            )
            drawn = array.next_u32(mask)
            for lane in range(lanes):
                if mask[lane]:
                    assert int(drawn[lane]) == scalars[lane].next_u32()
        x, c = array.state()
        assert [(int(a), int(b)) for a, b in zip(x, c)] == \
            [rng.state() for rng in scalars]

    @pytest.mark.parametrize("bound", [1, 2, 3, 7, 16, 37, 512, 100_000])
    def test_randrange_matches_scalar_rejection_sampling(self, bound):
        seeds = np.array(EDGE_SEEDS, dtype=np.uint64)
        array = MWCArray(seeds)
        scalars = [MultiplyWithCarry(int(seed)) for seed in seeds]
        for _ in range(500):
            drawn = array.randrange(bound)
            assert [int(v) for v in drawn] == \
                [rng.randrange(bound) for rng in scalars]

    def test_masked_randrange_and_randint(self):
        seeds = np.array(EDGE_SEEDS, dtype=np.uint64)
        lanes = len(EDGE_SEEDS)
        array = MWCArray(seeds)
        scalars = [MultiplyWithCarry(int(seed)) for seed in seeds]
        for round_index in range(200):
            mask = np.array(
                [(lane * 5 + round_index) % 4 != 1 for lane in range(lanes)],
                dtype=bool,
            )
            drawn = array.randint_inclusive(0, 500, mask)
            for lane in range(lanes):
                if mask[lane]:
                    assert int(drawn[lane]) == scalars[lane].randint_inclusive(0, 500)
        x, c = array.state()
        assert [(int(a), int(b)) for a, b in zip(x, c)] == \
            [rng.state() for rng in scalars]

    def test_nonzero_low_bound_offsets(self):
        array = MWCArray(np.array([9], dtype=np.uint64))
        scalar = MultiplyWithCarry(9)
        for _ in range(100):
            assert int(array.randint_inclusive(10, 20)[0]) == \
                scalar.randint_inclusive(10, 20)

    def test_degenerate_state_repair_matches_scalar(self):
        # The scalar constructor repairs (x=0, c=0) to (x=1, c=0); the
        # vectorised one must repair the same lanes the same way.  No
        # 64-bit seed is known to hit the fixed point, so exercise the
        # repair directly on the post-whitening state.
        seeds = np.array([0, 1], dtype=np.uint64)
        array = MWCArray(seeds)
        array._x[:] = np.uint64(0)
        array._c[:] = np.uint64(0)
        repaired = MWCArray.__new__(MWCArray)
        repaired._x = array._x.copy()
        repaired._c = array._c.copy()
        repaired._x[(repaired._x == 0) & (repaired._c == 0)] = np.uint64(1)
        assert list(repaired._x) == [1, 1]
        # And the repaired stream advances like scalar MWC from (1, 0).
        t = MWC_MULTIPLIER * 1 + 0
        assert int(
            MWCArray.next_u32(repaired)[0]
        ) == t & 0xFFFFFFFF

    def test_rejects_non_positive_bound(self):
        array = MWCArray(np.array([1], dtype=np.uint64))
        with pytest.raises(ConfigurationError):
            array.randrange(0)
        with pytest.raises(ConfigurationError):
            array.randint_inclusive(5, 4)

    @given(seed=st.integers(min_value=0, max_value=2**64 - 1))
    @settings(max_examples=30, deadline=None)
    def test_any_seed_lane_matches_scalar(self, seed):
        array = MWCArray(np.array([seed], dtype=np.uint64))
        scalar = MultiplyWithCarry(seed)
        for _ in range(200):
            assert int(array.next_u32()[0]) == scalar.next_u32()


class TestSetIndexArray:
    @pytest.mark.parametrize("num_sets", [1, 2, 37, 512, 2**31])
    def test_matches_scalar_hash(self, num_sets):
        hasher = ParametricHash(num_sets)
        lines = np.array([0, 1, 0x1000, 2**40, 2**63 - 1], dtype=np.uint64)
        riis = np.array([0, 1, 12345, 2**32 - 1], dtype=np.uint64)
        matrix = set_index_array(lines[:, None], riis[None, :], num_sets)
        for i, line in enumerate(lines):
            for j, rii in enumerate(riis):
                assert int(matrix[i, j]) == hasher.set_index(int(line), int(rii))

    def test_rejects_out_of_range_num_sets(self):
        with pytest.raises(ConfigurationError):
            set_index_array([1], [1], 0)
        with pytest.raises(ConfigurationError):
            set_index_array([1], [1], 2**31 + 1)

    @given(line=st.integers(min_value=0, max_value=2**64 - 1),
           rii=st.integers(min_value=0, max_value=2**32 - 1),
           num_sets=st.integers(min_value=1, max_value=2**31))
    @settings(max_examples=200, deadline=None)
    def test_property_matches_scalar(self, line, rii, num_sets):
        expected = ParametricHash(num_sets).set_index(line, rii)
        assert int(set_index_array([line], [rii], num_sets)[0]) == expected

    def test_placement_objects_delegate(self):
        from repro.mem.placement import ModuloPlacement, RandomPlacement

        modulo = ModuloPlacement(64)
        lines = np.arange(0, 500, 7)
        assert [int(v) for v in modulo.set_index_array(lines)] == \
            [modulo.set_index(int(line)) for line in lines]
        random = RandomPlacement(64, rii=99)
        assert [int(v) for v in random.set_index_array(lines)] == \
            [random.set_index(int(line)) for line in lines]
