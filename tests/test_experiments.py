"""Tests for the experiment drivers and text reporting (tiny scale)."""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    PWCETTable,
    run_fig3,
    run_fig4,
    run_iid_compliance,
)
from repro.analysis.experiments import _deployment_samples
from repro.analysis.reporting import (
    format_table,
    render_fig3,
    render_fig4,
    render_iid,
)
from repro.core.config import OperationMode
from repro.sim.backend import ProcessPoolBackend
from repro.sim.config import Scenario
from repro.sim.simulator import run_workload
from repro.utils.rng import derive_seeds
from repro.workloads.scale import ExperimentScale
from tests.conftest import make_stream_trace

BENCHES = ("RS", "PU", "CN")  # three cheap kernels keep driver tests fast


@pytest.fixture(scope="module")
def table():
    return PWCETTable(scale=ExperimentScale.tiny(), seed=7)


class TestPWCETTable:
    def test_lazy_and_cached(self, table):
        first = table.pwcet("RS", "efl", 250)
        again = table.pwcet("RS", "efl", 250)
        assert first == again
        assert ("RS", "EFL250") in table._estimates

    def test_instructions(self, table):
        assert table.instructions("RS") > 0

    def test_cp_and_efl_keys_distinct(self, table):
        efl = table.pwcet("RS", "efl", 250)
        cp = table.pwcet("RS", "cp", 2)
        assert ("RS", "CP2") in table._estimates
        assert efl > 0 and cp > 0

    def test_unknown_kind(self, table):
        with pytest.raises(Exception):
            table.pwcet("RS", "static", 1)

    def test_default_config_comes_from_scale(self, table):
        assert table.config.llc_size == table.scale.llc_size

    def test_campaign_records_provenance(self, table):
        campaign = table.campaign("RS", "efl", 250)
        assert len(campaign.seeds) == campaign.runs
        assert len(campaign.records) == campaign.runs
        assert campaign.hwm_seed is not None

    def test_backend_transparent(self, table):
        """A process-pool table reproduces the serial table's pWCETs
        bit-for-bit: seeds are per run, never per worker."""
        parallel = PWCETTable(
            scale=ExperimentScale.tiny(), seed=7,
            backend=ProcessPoolBackend(workers=2, force_pool=True),
        )
        assert parallel.pwcet("RS", "efl", 250) == table.pwcet("RS", "efl", 250)
        serial_campaign = table.campaign("RS", "efl", 250)
        parallel_campaign = parallel.campaign("RS", "efl", 250)
        assert parallel_campaign.execution_times == serial_campaign.execution_times
        assert parallel_campaign.seeds == serial_campaign.seeds


class TestDeploymentSamples:
    def test_matches_inline_run_workload(self, table):
        traces = (
            make_stream_trace("w0"),
            make_stream_trace("w1", base=0x20_0000),
        )
        scenario = Scenario.efl(500, mode=OperationMode.DEPLOYMENT)
        rep_seeds = derive_seeds(3, 4)
        samples = _deployment_samples(table, traces, scenario, rep_seeds, "w0+w1")
        expected = [
            run_workload(traces, table.config, scenario, seed).total_ipc
            for seed in rep_seeds
        ]
        assert samples == expected

    def test_process_backend_matches_serial(self, table):
        traces = (
            make_stream_trace("w0"),
            make_stream_trace("w1", base=0x20_0000),
        )
        scenario = Scenario.efl(500, mode=OperationMode.DEPLOYMENT)
        rep_seeds = derive_seeds(3, 4)
        serial = _deployment_samples(table, traces, scenario, rep_seeds, "wl")
        parallel_table = PWCETTable(
            scale=ExperimentScale.tiny(), seed=7,
            backend=ProcessPoolBackend(workers=2, force_pool=True),
        )
        parallel = _deployment_samples(
            parallel_table, traces, scenario, rep_seeds, "wl"
        )
        assert parallel == serial


class TestIIDDriver:
    def test_rows_and_render(self, table):
        result = run_iid_compliance(table, bench_ids=BENCHES)
        assert [row.bench_id for row in result.rows] == list(BENCHES)
        assert result.mid == 500  # middle option of (250, 500, 1000)
        text = render_iid(result)
        for bench in BENCHES:
            assert bench in text
        assert "WW stat" in text


class TestFig3Driver:
    def test_structure(self, table):
        fig3 = run_fig3(table, mids=(250,), ways=(1, 2), bench_ids=BENCHES)
        assert fig3.baseline_label == "CP2"
        assert fig3.setups == ["EFL250", "CP1", "CP2"]
        for bench in BENCHES:
            assert fig3.normalised[bench]["CP2"] == pytest.approx(1.0)
            for setup in fig3.setups:
                assert fig3.pwcet[bench][setup] > 0

    def test_geomean(self, table):
        fig3 = run_fig3(table, mids=(250,), ways=(2,), bench_ids=BENCHES)
        assert fig3.geometric_mean_normalised("CP2") == pytest.approx(1.0)

    def test_render(self, table):
        fig3 = run_fig3(table, mids=(250,), ways=(2,), bench_ids=BENCHES)
        text = render_fig3(fig3)
        assert "geomean" in text
        assert "EFL250" in text


class TestFig4Driver:
    def test_wgipc_only(self, table):
        fig4 = run_fig4(table, measure_average=False)
        assert len(fig4.comparisons) == table.scale.workload_count
        assert fig4.waipc_summary is None
        for comparison in fig4.comparisons:
            assert comparison.waipc_improvement is None
            assert sum(comparison.cp_partition) <= table.config.llc_ways
        curve = fig4.wgipc_curve()
        assert curve == sorted(curve, reverse=True)

    def test_render_without_average(self, table):
        fig4 = run_fig4(table, measure_average=False)
        text = render_fig4(fig4)
        assert "wgIPC" in text
        assert "waIPC" not in text

    def test_deterministic_given_seed(self, table):
        a = run_fig4(table, measure_average=False, workload_seed=5)
        b = run_fig4(table, measure_average=False, workload_seed=5)
        assert [c.wgipc_improvement for c in a.comparisons] == [
            c.wgipc_improvement for c in b.comparisons
        ]


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbb"], [["1", "2"], ["333", "4"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1
