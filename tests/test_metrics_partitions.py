"""Tests for gIPC metrics and the CP/EFL setup optimisers."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import (
    guaranteed_ipc,
    improvement,
    summarise_improvements,
    workload_guaranteed_ipc,
)
from repro.analysis.partitions import (
    DEFAULT_MID_OPTIONS,
    DEFAULT_WAY_OPTIONS,
    best_mid,
    best_partition,
    enumerate_partitions,
)
from repro.errors import AnalysisError, ConfigurationError


class TestMetrics:
    def test_gipc(self):
        assert guaranteed_ipc(1000, 4000.0) == 0.25

    def test_gipc_rejects_bad_inputs(self):
        with pytest.raises(AnalysisError):
            guaranteed_ipc(0, 100.0)
        with pytest.raises(AnalysisError):
            guaranteed_ipc(100, 0.0)

    def test_wgipc_sums(self):
        value = workload_guaranteed_ipc(
            ["A", "B"],
            instructions_of=lambda b: {"A": 100, "B": 200}[b],
            pwcet_of=lambda b, alloc: 1000.0,
            allocation=[1, 2],
        )
        assert value == pytest.approx(0.3)

    def test_wgipc_length_mismatch(self):
        with pytest.raises(AnalysisError):
            workload_guaranteed_ipc(
                ["A"], lambda b: 1, lambda b, a: 1.0, allocation=[1, 2]
            )

    def test_improvement(self):
        assert improvement(1.56, 1.0) == pytest.approx(0.56)
        assert improvement(0.9, 1.0) == pytest.approx(-0.1)
        with pytest.raises(AnalysisError):
            improvement(1.0, 0.0)

    def test_summary_fields(self):
        summary = summarise_improvements([0.7, 0.5, 0.1, -0.05])
        assert summary["workloads"] == 4
        assert summary["wins"] == 3
        assert summary["win_fraction"] == pytest.approx(0.75)
        assert summary["max_improvement"] == pytest.approx(0.7)
        assert summary["max_degradation"] == pytest.approx(0.05)
        assert summary["mean_degradation"] == pytest.approx(0.05)

    def test_summary_all_wins(self):
        summary = summarise_improvements([0.1, 0.2])
        assert summary["mean_degradation"] == 0.0
        assert summary["max_degradation"] == 0.0

    def test_summary_empty_rejected(self):
        with pytest.raises(AnalysisError):
            summarise_improvements([])


class TestEnumeratePartitions:
    def test_paper_setup(self):
        partitions = enumerate_partitions(4, 8)
        assert (2, 2, 2, 2) in partitions
        assert (4, 2, 1, 1) in partitions
        assert (1, 1, 1, 1) in partitions
        assert (4, 4, 1, 1) not in partitions  # sums to 10
        assert all(sum(p) <= 8 for p in partitions)

    def test_all_from_options(self):
        for partition in enumerate_partitions(4, 8):
            assert set(partition) <= set(DEFAULT_WAY_OPTIONS)

    def test_impossible_rejected(self):
        with pytest.raises(AnalysisError):
            enumerate_partitions(4, 2, way_options=(4,))

    def test_bad_args(self):
        with pytest.raises(ConfigurationError):
            enumerate_partitions(0, 8)
        with pytest.raises(ConfigurationError):
            enumerate_partitions(4, 8, way_options=(0, 2))

    @given(
        num_tasks=st.integers(min_value=1, max_value=4),
        total_ways=st.integers(min_value=4, max_value=16),
    )
    @settings(max_examples=30)
    def test_every_partition_fits(self, num_tasks, total_ways):
        for partition in enumerate_partitions(num_tasks, total_ways):
            assert sum(partition) <= total_ways
            assert len(partition) == num_tasks


class TestBestPartition:
    @staticmethod
    def pwcet_table(bench, ways):
        """Synthetic pWCETs: more ways strictly better, benchmark 'HOG'
        benefits dramatically from 4 ways."""
        base = {"HOG": 8000.0, "MEH": 1000.0}[bench]
        factor = {1: 1.2, 2: 1.0, 4: 0.1 if bench == "HOG" else 0.95}[ways]
        return base * factor

    def test_gives_ways_to_the_hog(self):
        counts, value = best_partition(
            ["HOG", "MEH", "MEH", "MEH"],
            instructions_of=lambda b: 1000,
            pwcet_of_ways=self.pwcet_table,
            total_ways=8,
        )
        assert counts[0] == 4
        assert value > 0

    def test_never_worse_than_even_split(self):
        workload = ["HOG", "MEH", "HOG", "MEH"]
        counts, value = best_partition(
            workload,
            instructions_of=lambda b: 1000,
            pwcet_of_ways=self.pwcet_table,
            total_ways=8,
        )
        even = workload_guaranteed_ipc(
            workload, lambda b: 1000, self.pwcet_table, [2, 2, 2, 2]
        )
        assert value >= even


class TestBestMid:
    def test_picks_minimising_mid(self):
        def pwcet(bench, mid):
            return 1000.0 * {250: 1.0, 500: 1.2, 1000: 2.0}[mid]

        mid, value = best_mid(
            ["A", "B", "C", "D"], lambda b: 100, pwcet, DEFAULT_MID_OPTIONS
        )
        assert mid == 250
        assert value == pytest.approx(4 * 100 / 1000.0)

    def test_single_shared_mid(self):
        """Tasks cannot get different MIDs: the best single compromise
        wins even when tasks disagree."""
        def pwcet(bench, mid):
            if bench == "LOW":
                return {250: 100.0, 500: 150.0, 1000: 900.0}[mid]
            return {250: 900.0, 500: 150.0, 1000: 100.0}[mid]

        mid, _value = best_mid(["LOW", "HIGH"], lambda b: 100, pwcet)
        assert mid == 500

    def test_empty_options_rejected(self):
        with pytest.raises(ConfigurationError):
            best_mid(["A"], lambda b: 1, lambda b, m: 1.0, mid_options=())
