"""Tests for the shared bus, memory controller and main memory."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.mem.bus import SharedBus
from repro.mem.mainmemory import MainMemory
from repro.mem.memctrl import AnalysableMemoryController
from repro.utils.rng import MultiplyWithCarry


def make_bus(num_cores=4, latency=2, seed=1):
    return SharedBus(num_cores, latency, MultiplyWithCarry(seed))


class TestSharedBus:
    def test_uncontended_latency(self):
        bus = make_bus()
        assert bus.request(0, 100) == 102

    def test_back_to_back_same_core(self):
        bus = make_bus()
        assert bus.request(0, 0) == 2
        assert bus.request(0, 2) == 4

    def test_contention_serialises(self):
        bus = make_bus()
        done0 = bus.request(0, 10)
        done1 = bus.request(1, 10)
        assert done0 == 12
        assert done1 == 14
        assert bus.contended == 1

    def test_three_way_contention(self):
        bus = make_bus()
        completions = sorted(
            [bus.request(0, 0), bus.request(1, 0), bus.request(2, 0)]
        )
        assert completions == [2, 4, 6]

    def test_idle_gap_resets(self):
        bus = make_bus()
        bus.request(0, 0)
        assert bus.request(1, 50) == 52

    def test_worst_case_completion(self):
        bus = make_bus(num_cores=4, latency=2)
        # Lose one round to each of the 3 other cores, then transfer.
        assert bus.worst_case_completion(100) == 108

    def test_lottery_is_fair_ish(self):
        """Over many 2-way ties, each core wins a fair share."""
        wins = {0: 0, 1: 0}
        for seed in range(200):
            bus = make_bus(num_cores=2, seed=seed)
            completions = bus.arbitrate([(0, 5), (1, 5)])
            wins[0 if completions[0] < completions[1] else 1] += 1
        assert 40 < wins[0] < 160

    def test_arbitrate_serialises_all(self):
        bus = make_bus()
        completions = bus.arbitrate([(0, 0), (1, 0), (2, 0), (3, 0)])
        assert sorted(completions.values()) == [2, 4, 6, 8]
        assert set(completions) == {0, 1, 2, 3}

    def test_arbitrate_idle_gap(self):
        bus = make_bus()
        completions = bus.arbitrate([(0, 0), (1, 100)])
        assert completions[0] == 2
        assert completions[1] == 102

    def test_arbitrate_rejects_duplicate_core(self):
        bus = make_bus()
        with pytest.raises(SimulationError):
            bus.arbitrate([(0, 0), (0, 1)])

    def test_arbitrate_respects_prior_occupancy(self):
        bus = make_bus()
        bus.request(0, 0)  # busy until 2
        completions = bus.arbitrate([(1, 0)])
        assert completions[1] == 4

    def test_unknown_core_rejected(self):
        bus = make_bus()
        with pytest.raises(SimulationError):
            bus.request(7, 0)

    def test_negative_time_rejected(self):
        bus = make_bus()
        with pytest.raises(SimulationError):
            bus.request(0, -1)

    def test_reset(self):
        bus = make_bus()
        bus.request(0, 0)
        bus.reset()
        assert bus.granted == 0
        assert bus.request(0, 0) == 2


class TestMainMemory:
    def test_latency(self):
        memory = MainMemory(latency=100)
        assert memory.read() == 100
        assert memory.write() == 100
        assert memory.reads == 1
        assert memory.writes == 1

    def test_reset(self):
        memory = MainMemory()
        memory.read()
        memory.reset()
        assert memory.reads == 0

    def test_rejects_bad_latency(self):
        with pytest.raises(ConfigurationError):
            MainMemory(latency=0)


class TestMemoryController:
    def make(self, num_cores=4, latency=100):
        return AnalysableMemoryController(num_cores, MainMemory(latency))

    def test_unloaded_read(self):
        ctrl = self.make()
        assert ctrl.read(0, 50) == 150

    def test_channel_occupancy_delays(self):
        ctrl = self.make()
        assert ctrl.read(0, 0) == 100
        assert ctrl.read(1, 10) == 200
        assert ctrl.queued == 1

    def test_writeback_never_delays_reads(self):
        """Posted writes drain with read priority (the [25] contract)."""
        ctrl = self.make()
        ctrl.write_back(0, 0)
        assert ctrl.read(1, 0) == 100

    def test_writeback_drains_behind_reads(self):
        ctrl = self.make()
        ctrl.read(0, 0)  # channel busy until 100
        assert ctrl.write_back(1, 10) == 200
        assert ctrl.posted_writes == 1

    def test_worst_case_bound(self):
        ctrl = self.make(num_cores=4, latency=100)
        # (N-1) * L interference + L service = 400.
        assert ctrl.worst_case_completion(0) == 400
        assert ctrl.worst_case_wait == 300

    def test_worst_case_writeback_is_posted(self):
        ctrl = self.make()
        assert ctrl.worst_case_writeback(123) == 123
        assert ctrl.memory.writes == 1

    def test_deployment_never_exceeds_bound_in_isolation(self):
        """A single core's request latency never beats the WCD bound."""
        ctrl = self.make()
        time = 0
        for _ in range(50):
            done = ctrl.read(0, time)
            assert done - time <= 4 * 100
            time = done

    def test_read_wait_capped_at_round_robin_bound(self):
        """Even under saturation, a read waits at most (N-1)*L."""
        ctrl = self.make()
        # Saturate the channel with a backlog of reads at time 0.
        for core in range(4):
            ctrl.read(core, 0)
        done = ctrl.read(0, 0)
        assert done <= 0 + 3 * 100 + 100

    def test_unknown_core_rejected(self):
        ctrl = self.make()
        with pytest.raises(SimulationError):
            ctrl.read(9, 0)

    def test_reset(self):
        ctrl = self.make()
        ctrl.read(0, 0)
        ctrl.reset()
        assert ctrl.requests == 0
        assert ctrl.read(0, 0) == 100
