"""Campaign service: job lifecycle, content-addressed dedup, accounting.

The headline contract under test: resubmitting a byte-identical
campaign performs **zero** simulation runs and yields a result whose
samples, seeds and records are bit-identical to the first
submission's — whether the duplicate hits the store (state ``cached``)
or coalesces onto an in-flight twin.  Tampered store entries are
rejected by checksum and transparently re-simulated.  Throughout, the
metrics reconcile: ``runs_requested == runs_simulated + runs_resumed
+ runs_served_from_cache + runs_shed``.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.errors import (
    ConfigurationError,
    ResultIntegrityError,
    ServiceError,
)
from repro.observability import Telemetry
from repro.service import (
    JOB_CACHED,
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    CampaignJob,
    JobQueue,
    ResultStore,
)
from repro.sim.campaign import collect_execution_times
from repro.sim.config import Scenario

from .conftest import make_stream_trace


@pytest.fixture
def scenario() -> Scenario:
    return Scenario.efl(mid=100)


def make_job(tiny_config, scenario, runs=8, seed=5, name="svc", **kwargs):
    trace = make_stream_trace(name=name, words=32, sweeps=2)
    kwargs.setdefault("engine", "scalar")
    return CampaignJob(
        trace, tiny_config, scenario, runs=runs, master_seed=seed, **kwargs
    )


def _sample(result):
    """The deterministic part of a result (host wall times excluded)."""
    def deterministic(record):
        entry = record.to_dict()
        entry.pop("wall_time_s")
        return entry

    return (
        result.execution_times,
        result.seeds,
        [deterministic(record) for record in result.records],
    )


def assert_reconciled(telemetry: Telemetry) -> None:
    metrics = telemetry.metrics
    assert metrics.value("runs_requested") == (
        metrics.value("runs_simulated")
        + metrics.value("runs_resumed")
        + metrics.value("runs_served_from_cache")
        + metrics.value("runs_shed")
    )


# ----------------------------------------------------------------------
# jobs + queue
# ----------------------------------------------------------------------
class TestCampaignJob:
    def test_rejects_non_positive_runs(self, tiny_config, scenario):
        with pytest.raises(ConfigurationError):
            make_job(tiny_config, scenario, runs=0)

    def test_fingerprint_depends_on_campaign_identity(
        self, tiny_config, scenario
    ):
        a = make_job(tiny_config, scenario, seed=1)
        twin = make_job(tiny_config, scenario, seed=1)
        other_seed = make_job(tiny_config, scenario, seed=2)
        other_runs = make_job(tiny_config, scenario, seed=1, runs=9)
        assert a.fingerprint == twin.fingerprint
        assert a.fingerprint != other_seed.fingerprint
        assert a.fingerprint != other_runs.fingerprint

    def test_to_dict_is_json_ready(self, tiny_config, scenario):
        job = make_job(tiny_config, scenario)
        payload = json.loads(json.dumps(job.to_dict()))
        assert payload["state"] == "queued"
        assert payload["scenario"] == "EFL100"
        assert payload["runs"] == 8


class TestJobQueue:
    def test_executes_job_matching_direct_call(self, tiny_config, scenario):
        job = make_job(tiny_config, scenario)
        direct = collect_execution_times(
            job.trace, tiny_config, scenario, job.runs,
            master_seed=job.master_seed, engine="scalar",
        )
        with JobQueue(workers=1) as queue:
            result = queue.submit(job).wait(timeout=60)
        assert job.state == JOB_DONE
        assert job.source == "simulated"
        assert _sample(result) == _sample(direct)

    def test_failed_job_raises_service_error_with_cause(
        self, tiny_config, scenario
    ):
        job = make_job(tiny_config, scenario, cycle_budget=1)
        with JobQueue(workers=1) as queue:
            queue.submit(job)
            with pytest.raises(ServiceError, match="failed"):
                job.wait(timeout=60)
        assert job.state == JOB_FAILED
        assert "cycle" in job.error.lower() or "budget" in job.error.lower()

    def test_cancel_before_start(self, tiny_config, scenario):
        queue = JobQueue(workers=1, start=False)
        job = queue.submit(make_job(tiny_config, scenario))
        assert queue.cancel(job.job_id) is True
        assert job.state == JOB_CANCELLED
        with pytest.raises(ServiceError, match="cancelled"):
            job.wait(timeout=1)
        # Cancelling a terminal job is a no-op, not an error.
        assert queue.cancel(job.job_id) is False
        queue.shutdown()

    def test_cancel_after_completion_returns_false(
        self, tiny_config, scenario
    ):
        with JobQueue(workers=1) as queue:
            job = queue.submit(make_job(tiny_config, scenario))
            job.wait(timeout=60)
            assert queue.cancel(job.job_id) is False
        assert job.state == JOB_DONE

    def test_submit_after_shutdown_rejected(self, tiny_config, scenario):
        queue = JobQueue(workers=1)
        queue.shutdown()
        with pytest.raises(ServiceError, match="shut down"):
            queue.submit(make_job(tiny_config, scenario))

    def test_unknown_job_id_rejected(self):
        queue = JobQueue(workers=1)
        with pytest.raises(ServiceError, match="unknown job id"):
            queue.status("job-999999")
        queue.shutdown()

    def test_queue_counts_jobs(self, tiny_config, scenario):
        telemetry = Telemetry()
        with JobQueue(workers=2, telemetry=telemetry) as queue:
            jobs = [
                queue.submit(make_job(tiny_config, scenario, seed=seed))
                for seed in (1, 2, 3)
            ]
            for job in jobs:
                job.wait(timeout=60)
        assert telemetry.metrics.value("jobs_submitted") == 3
        assert telemetry.metrics.value("jobs_completed") == 3
        assert len(queue.jobs()) == 3
        assert {job.job_id for job in jobs} == {
            "job-000001", "job-000002", "job-000003"
        }


# ----------------------------------------------------------------------
# result store
# ----------------------------------------------------------------------
class TestResultStore:
    def test_put_get_round_trip(self, tmp_path, tiny_config, scenario):
        job = make_job(tiny_config, scenario)
        result = collect_execution_times(
            job.trace, tiny_config, scenario, job.runs,
            master_seed=job.master_seed, engine="scalar",
        )
        store = ResultStore(tmp_path / "store")
        store.put(job.fingerprint, result)
        assert job.fingerprint in store
        loaded = store.get(job.fingerprint)
        assert loaded.to_dict() == result.to_dict()

    def test_get_missing_raises(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ServiceError, match="no entry"):
            store.get("deadbeefdeadbeef")

    def test_tampered_entry_rejected(self, tmp_path, tiny_config, scenario):
        job = make_job(tiny_config, scenario)
        store = ResultStore(tmp_path)
        with JobQueue(workers=1) as queue:
            store.get_or_submit(job, queue).wait(timeout=60)
        path = store.path_for(job.fingerprint)
        entry = json.loads(path.read_text())
        entry["payload"]["execution_times"][0] += 1  # flip the sample
        path.write_text(json.dumps(entry))
        with pytest.raises(ResultIntegrityError, match="integrity"):
            store.get(job.fingerprint)

    def test_malformed_entry_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        store.path_for("cafe").write_text("not json {")
        with pytest.raises(ResultIntegrityError, match="malformed"):
            store.get("cafe")


# ----------------------------------------------------------------------
# the dedup contract
# ----------------------------------------------------------------------
class TestDedup:
    def test_resubmission_simulates_zero_runs_bit_identically(
        self, tmp_path, tiny_config, scenario
    ):
        store = ResultStore(tmp_path)
        telemetry = Telemetry()
        with JobQueue(workers=1, telemetry=telemetry) as queue:
            first = make_job(tiny_config, scenario)
            original = store.get_or_submit(first, queue).wait(timeout=60)
            simulated_after_first = telemetry.metrics.value("runs_simulated")

            second = make_job(tiny_config, scenario)
            served = store.get_or_submit(second, queue).wait(timeout=60)

        assert first.state == JOB_DONE
        assert second.state == JOB_CACHED
        assert second.source == "store"
        # Zero additional simulation work...
        assert telemetry.metrics.value("runs_simulated") == simulated_after_first
        assert telemetry.metrics.value("store_hits") == 1
        # ...and a bit-identical result, checksums included.
        assert served.to_dict() == original.to_dict()
        assert served.seeds == original.seeds
        assert_reconciled(telemetry)

    def test_tampered_entry_is_resimulated(
        self, tmp_path, tiny_config, scenario
    ):
        store = ResultStore(tmp_path)
        telemetry = Telemetry()
        with JobQueue(workers=1, telemetry=telemetry) as queue:
            first = make_job(tiny_config, scenario)
            original = store.get_or_submit(first, queue).wait(timeout=60)

            path = store.path_for(first.fingerprint)
            entry = json.loads(path.read_text())
            entry["payload"]["execution_times"][0] += 1
            path.write_text(json.dumps(entry))

            second = make_job(tiny_config, scenario)
            recovered = store.get_or_submit(second, queue).wait(timeout=60)

        # The corrupt entry counted as a miss and was re-simulated...
        assert second.state == JOB_DONE
        assert second.source == "simulated"
        assert telemetry.metrics.value("store_integrity_failures") == 1
        assert telemetry.metrics.value("runs_simulated") == first.runs * 2
        # ...reproducing the original sample and repairing the store.
        assert _sample(recovered) == _sample(original)
        assert store.get(first.fingerprint).execution_times \
            == original.execution_times
        assert_reconciled(telemetry)

    def test_inflight_coalescing_shares_one_simulation(
        self, tmp_path, tiny_config, scenario
    ):
        store = ResultStore(tmp_path)
        telemetry = Telemetry()
        # start=False: both submissions are staged before any worker
        # runs, so the second deterministically sees the first in
        # flight rather than in the store.
        queue = JobQueue(workers=1, telemetry=telemetry, start=False)
        first = make_job(tiny_config, scenario)
        second = make_job(tiny_config, scenario)
        resolved_first = store.get_or_submit(first, queue)
        resolved_second = store.get_or_submit(second, queue)
        assert resolved_second is resolved_first
        assert second.source == "coalesced"
        queue.start()
        result_first = resolved_first.wait(timeout=60)
        result_second = resolved_second.wait(timeout=60)
        queue.shutdown()
        assert result_second is result_first
        assert telemetry.metrics.value("jobs_coalesced") == 1
        assert telemetry.metrics.value("runs_simulated") == first.runs
        assert telemetry.metrics.value("runs_requested") == first.runs * 2
        assert_reconciled(telemetry)

    def test_concurrent_identical_submissions_reconcile(
        self, tmp_path, tiny_config, scenario
    ):
        """Hammer one fingerprint from many threads; accounting holds."""
        store = ResultStore(tmp_path)
        telemetry = Telemetry()
        results = []
        errors = []
        with JobQueue(workers=2, telemetry=telemetry) as queue:
            def submit_one():
                try:
                    job = make_job(tiny_config, scenario)
                    results.append(
                        store.get_or_submit(job, queue).wait(timeout=60)
                    )
                except Exception as exc:  # pragma: no cover - diagnostic
                    errors.append(exc)

            threads = [threading.Thread(target=submit_one) for _ in range(6)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        assert len(results) == 6
        reference = results[0].to_dict()
        assert all(result.to_dict() == reference for result in results)
        runs = reference["runs"]
        assert telemetry.metrics.value("runs_requested") == 6 * runs
        # Exactly one submission simulated; the rest were served.
        assert telemetry.metrics.value("runs_simulated") == runs
        assert_reconciled(telemetry)

    def test_different_campaigns_do_not_collide(
        self, tmp_path, tiny_config, scenario
    ):
        store = ResultStore(tmp_path)
        telemetry = Telemetry()
        with JobQueue(workers=1, telemetry=telemetry) as queue:
            a = make_job(tiny_config, scenario, seed=1)
            b = make_job(tiny_config, scenario, seed=2)
            result_a = store.get_or_submit(a, queue).wait(timeout=60)
            result_b = store.get_or_submit(b, queue).wait(timeout=60)
        assert a.fingerprint != b.fingerprint
        assert result_a.seeds != result_b.seeds
        assert sorted(store.fingerprints()) \
            == sorted([a.fingerprint, b.fingerprint])
        assert telemetry.metrics.value("store_misses") == 2
        assert_reconciled(telemetry)

    def test_convenience_submit_wrapper(self, tmp_path, tiny_config, scenario):
        store = ResultStore(tmp_path)
        first = store.submit(make_job(tiny_config, scenario))
        again = store.submit(make_job(tiny_config, scenario))
        assert again.to_dict() == first.to_dict()


class TestClaimSlotRelease:
    """A dead in-flight job must never capture later duplicates."""

    def test_cancel_then_resubmit_resimulates(
        self, tmp_path, tiny_config, scenario
    ):
        store = ResultStore(tmp_path)
        telemetry = Telemetry()
        # start=False: the first submission is staged (claiming the
        # in-flight slot) and cancelled before any worker runs, so the
        # duplicate deterministically meets a cancelled claimant.
        queue = JobQueue(workers=1, telemetry=telemetry, start=False)
        first = store.get_or_submit(make_job(tiny_config, scenario), queue)
        assert queue.cancel(first.job_id) is True
        assert first.state == JOB_CANCELLED

        second = make_job(tiny_config, scenario)
        resolved = store.get_or_submit(second, queue)
        # Not coalesced onto the cancelled job: a fresh simulation.
        assert resolved is second
        assert telemetry.metrics.value("jobs_coalesced") == 0
        assert telemetry.metrics.value("store_misses") == 2
        queue.start()
        result = resolved.wait(timeout=60)
        queue.shutdown()
        assert second.state == JOB_DONE
        assert second.source == "simulated"
        assert result.runs == second.runs
        # The cancelled front-door job's runs were requested but never
        # simulated nor served — they land on ``runs_shed``, keeping
        # the extended invariant exact instead of leaving a shortfall.
        assert telemetry.metrics.value("runs_shed") == first.runs
        assert_reconciled(telemetry)

    def test_failed_inflight_claim_is_dead_even_before_cleanup(
        self, tmp_path, tiny_config, scenario
    ):
        # The cleanup callback releases the slot *after* the job turns
        # terminal; a duplicate arriving inside that window (job state
        # terminal, slot still claimed) must not coalesce onto the
        # corpse.  Plant exactly that window.
        store = ResultStore(tmp_path)
        telemetry = Telemetry()
        dead = make_job(tiny_config, scenario)
        dead.state = JOB_FAILED  # terminal state, event not yet set
        store._inflight[dead.fingerprint] = dead
        with JobQueue(workers=1, telemetry=telemetry) as queue:
            fresh = make_job(tiny_config, scenario)
            result = store.get_or_submit(fresh, queue).wait(timeout=60)
        assert fresh.state == JOB_DONE
        assert fresh.source == "simulated"
        assert telemetry.metrics.value("jobs_coalesced") == 0
        assert result.runs == fresh.runs

    def test_failed_job_then_resubmit_resimulates(
        self, tmp_path, tiny_config, scenario
    ):
        store = ResultStore(tmp_path)
        telemetry = Telemetry()
        with JobQueue(workers=1, telemetry=telemetry) as queue:
            # cycle_budget is not part of the fingerprint, so the
            # failing job and the healthy resubmission are duplicates.
            doomed = make_job(tiny_config, scenario, cycle_budget=1)
            store.get_or_submit(doomed, queue)
            with pytest.raises(ServiceError, match="failed"):
                doomed.wait(timeout=60)
            retry = make_job(tiny_config, scenario)
            result = store.get_or_submit(retry, queue).wait(timeout=60)
        assert doomed.state == JOB_FAILED
        assert retry.state == JOB_DONE
        assert retry.source == "simulated"
        assert result.runs == retry.runs
        assert telemetry.metrics.value("jobs_coalesced") == 0

    def test_refused_submission_releases_claim_and_fails_job(
        self, tmp_path, tiny_config, scenario
    ):
        store = ResultStore(tmp_path)
        telemetry = Telemetry()
        refused = JobQueue(workers=1, telemetry=telemetry)
        refused.shutdown()
        job = make_job(tiny_config, scenario)
        with pytest.raises(ServiceError, match="shut down"):
            store.get_or_submit(job, refused)
        # The claim slot was released and the job failed terminally —
        # waiters are not stranded.
        assert store._inflight == {}
        assert job.state == JOB_FAILED
        assert job.done
        with pytest.raises(ServiceError, match="failed"):
            job.wait(timeout=1)
        # A later duplicate re-simulates on a healthy queue instead of
        # coalescing onto the refused job.
        with JobQueue(workers=1, telemetry=telemetry) as healthy:
            retry = make_job(tiny_config, scenario)
            result = store.get_or_submit(retry, healthy).wait(timeout=60)
        assert retry.source == "simulated"
        assert result.runs == retry.runs
