"""Tests for the MBPTA pipeline and the measurement campaign layer."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.pta.mbpta import (
    DEFAULT_EXCEEDANCE_PROBS,
    convergence_check,
    estimate_pwcet,
)
from repro.sim.campaign import collect_execution_times
from repro.sim.config import Scenario, SystemConfig
from tests.conftest import make_stream_trace


def gumbel_sample(mu, beta, n, seed=0):
    rng = random.Random(seed)
    return [mu - beta * math.log(-math.log(rng.random())) for _ in range(n)]


class TestEstimatePwcet:
    def test_full_pipeline(self):
        sample = gumbel_sample(1000, 10, 400, seed=1)
        result = estimate_pwcet(sample, task="t", scenario_label="EFL500",
                                block_size=20)
        assert result.runs == 400
        assert result.task == "t"
        assert result.iid is not None and result.iid.passed
        assert set(result.pwcet) == set(DEFAULT_EXCEEDANCE_PROBS)
        assert result.min_time <= result.mean_time <= result.max_time
        assert result.pwcet_at(1e-15) >= result.max_time

    def test_pwcet_ordering_across_probs(self):
        sample = gumbel_sample(1000, 10, 400, seed=2)
        result = estimate_pwcet(sample, block_size=20)
        assert (
            result.pwcet_at(1e-15)
            <= result.pwcet_at(1e-17)
            <= result.pwcet_at(1e-19)
        )

    def test_skip_iid(self):
        result = estimate_pwcet(gumbel_sample(10, 1, 60, seed=3),
                                block_size=10, check_iid=False)
        assert result.iid is None

    def test_missing_prob_raises(self):
        result = estimate_pwcet(gumbel_sample(10, 1, 100, seed=4),
                                block_size=10)
        with pytest.raises(AnalysisError):
            result.pwcet_at(0.5)

    def test_convergence_on_large_stable_sample(self):
        sample = gumbel_sample(1000, 5, 2000, seed=5)
        converged, delta = convergence_check(sample, 1e-15, block_size=25)
        assert converged
        assert delta < 0.02

    def test_convergence_undecidable_on_tiny_sample(self):
        """Too few observations to form a partial estimate: the check
        must report not-converged rather than guessing."""
        converged, delta = convergence_check(
            gumbel_sample(1000, 5, 49, seed=6), 1e-15, block_size=25
        )
        assert not converged
        assert delta == float("inf")


class TestCampaign:
    CONFIG = SystemConfig(l1_size=256, llc_size=2048)

    def test_collects_requested_runs(self, stream_trace):
        result = collect_execution_times(
            stream_trace, self.CONFIG, Scenario.efl(250), runs=7, master_seed=1
        )
        assert result.runs == 7
        assert len(result.execution_times) == 7
        assert result.task == stream_trace.name
        assert result.scenario_label == "EFL250"
        assert result.instructions == len(stream_trace)

    def test_summary_stats(self, stream_trace):
        result = collect_execution_times(
            stream_trace, self.CONFIG, Scenario.efl(250), runs=9, master_seed=1
        )
        assert result.min_time <= result.mean_time <= result.max_time

    def test_runs_are_randomised(self, stream_trace):
        result = collect_execution_times(
            stream_trace, self.CONFIG, Scenario.efl(250), runs=16, master_seed=3
        )
        assert len(set(result.execution_times)) > 1

    def test_on_run_callback(self, stream_trace):
        seen = []
        collect_execution_times(
            stream_trace, self.CONFIG, Scenario.efl(250), runs=3,
            master_seed=1, on_run=lambda i, r: seen.append(i),
        )
        assert seen == [0, 1, 2]

    def test_zero_runs_rejected(self, stream_trace):
        with pytest.raises(ConfigurationError):
            collect_execution_times(
                stream_trace, self.CONFIG, Scenario.efl(250), runs=0
            )

    def test_reproducible(self, stream_trace):
        a = collect_execution_times(stream_trace, self.CONFIG,
                                    Scenario.efl(250), runs=5, master_seed=9)
        b = collect_execution_times(stream_trace, self.CONFIG,
                                    Scenario.efl(250), runs=5, master_seed=9)
        assert a.execution_times == b.execution_times
