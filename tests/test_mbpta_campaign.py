"""Tests for the MBPTA pipeline and the measurement campaign layer."""

from __future__ import annotations

import math
import random

import pytest

from repro.errors import AnalysisError, ConfigurationError, SimulationError
from repro.pta.mbpta import (
    DEFAULT_EXCEEDANCE_PROBS,
    convergence_check,
    estimate_pwcet,
)
from repro.sim.backend import RunObserver, SerialBackend
from repro.sim.campaign import collect_execution_times
from repro.sim.config import Scenario, SystemConfig
from repro.sim.simulator import run_isolation
from repro.utils.rng import derive_seeds


def gumbel_sample(mu, beta, n, seed=0):
    rng = random.Random(seed)
    return [mu - beta * math.log(-math.log(rng.random())) for _ in range(n)]


class TestEstimatePwcet:
    def test_full_pipeline(self):
        sample = gumbel_sample(1000, 10, 400, seed=1)
        result = estimate_pwcet(sample, task="t", scenario_label="EFL500",
                                block_size=20)
        assert result.runs == 400
        assert result.task == "t"
        assert result.iid is not None and result.iid.passed
        assert set(result.pwcet) == set(DEFAULT_EXCEEDANCE_PROBS)
        assert result.min_time <= result.mean_time <= result.max_time
        assert result.pwcet_at(1e-15) >= result.max_time

    def test_pwcet_ordering_across_probs(self):
        sample = gumbel_sample(1000, 10, 400, seed=2)
        result = estimate_pwcet(sample, block_size=20)
        assert (
            result.pwcet_at(1e-15)
            <= result.pwcet_at(1e-17)
            <= result.pwcet_at(1e-19)
        )

    def test_skip_iid(self):
        result = estimate_pwcet(gumbel_sample(10, 1, 60, seed=3),
                                block_size=10, check_iid=False)
        assert result.iid is None

    def test_missing_prob_raises(self):
        result = estimate_pwcet(gumbel_sample(10, 1, 100, seed=4),
                                block_size=10)
        with pytest.raises(AnalysisError):
            result.pwcet_at(0.5)

    def test_convergence_on_large_stable_sample(self):
        sample = gumbel_sample(1000, 5, 2000, seed=5)
        converged, delta = convergence_check(sample, 1e-15, block_size=25)
        assert converged
        assert delta < 0.02

    def test_convergence_undecidable_on_tiny_sample(self):
        """Too few observations to form a partial estimate: the check
        must report not-converged rather than guessing."""
        converged, delta = convergence_check(
            gumbel_sample(1000, 5, 49, seed=6), 1e-15, block_size=25
        )
        assert not converged
        assert delta == float("inf")


class TestCampaign:
    CONFIG = SystemConfig(l1_size=256, llc_size=2048)

    def test_collects_requested_runs(self, stream_trace):
        result = collect_execution_times(
            stream_trace, self.CONFIG, Scenario.efl(250), runs=7, master_seed=1
        )
        assert result.runs == 7
        assert len(result.execution_times) == 7
        assert result.task == stream_trace.name
        assert result.scenario_label == "EFL250"
        assert result.instructions == len(stream_trace)

    def test_summary_stats(self, stream_trace):
        result = collect_execution_times(
            stream_trace, self.CONFIG, Scenario.efl(250), runs=9, master_seed=1
        )
        assert result.min_time <= result.mean_time <= result.max_time

    def test_runs_are_randomised(self, stream_trace):
        result = collect_execution_times(
            stream_trace, self.CONFIG, Scenario.efl(250), runs=16, master_seed=3
        )
        assert len(set(result.execution_times)) > 1

    def test_observer_sees_every_run(self, stream_trace):
        class Recorder(RunObserver):
            def __init__(self):
                self.started = None
                self.indices = []
                self.ended = None

            def on_campaign_start(self, task, scenario_label, runs):
                self.started = (task, scenario_label, runs)

            def on_run(self, record):
                self.indices.append(record.index)

            def on_campaign_end(self, result):
                self.ended = result

        recorder = Recorder()
        result = collect_execution_times(
            stream_trace, self.CONFIG, Scenario.efl(250), runs=3,
            master_seed=1, observer=recorder,
        )
        assert recorder.started == (stream_trace.name, "EFL250", 3)
        assert recorder.indices == [0, 1, 2]
        assert recorder.ended is result

    def test_seed_provenance(self, stream_trace):
        result = collect_execution_times(
            stream_trace, self.CONFIG, Scenario.efl(250), runs=6, master_seed=11
        )
        assert result.master_seed == 11
        assert result.seeds == derive_seeds(11, 6)
        # The HWM seed reproduces the worst observed run in isolation.
        assert result.hwm_seed == result.seeds[result.hwm_index]
        rerun = run_isolation(
            stream_trace, self.CONFIG, Scenario.efl(250), result.hwm_seed
        )
        assert rerun.cores[0].cycles == result.max_time

    def test_records_match_sample(self, stream_trace):
        result = collect_execution_times(
            stream_trace, self.CONFIG, Scenario.efl(250), runs=5, master_seed=2
        )
        assert [r.cycles for r in result.records] == result.execution_times
        assert [r.seed for r in result.records] == result.seeds
        assert all(r.wall_time_s > 0 for r in result.records)
        assert result.wall_time_s > 0
        assert result.runs_per_second > 0

    def test_instruction_divergence_detected(self, stream_trace):
        """A run retiring a different instruction count is a harness
        bug (the trace is deterministic) and must not be papered over
        by silently keeping the last run's count."""

        class Tampering(SerialBackend):
            def execute(self, requests, observer=None):
                outcomes = super().execute(requests, observer)
                outcomes[-1].result.cores[0].instructions += 1
                return outcomes

        with pytest.raises(SimulationError, match="retired"):
            collect_execution_times(
                stream_trace, self.CONFIG, Scenario.efl(250), runs=3,
                master_seed=1, backend=Tampering(),
            )

    def test_zero_runs_rejected(self, stream_trace):
        with pytest.raises(ConfigurationError):
            collect_execution_times(
                stream_trace, self.CONFIG, Scenario.efl(250), runs=0
            )

    def test_reproducible(self, stream_trace):
        a = collect_execution_times(stream_trace, self.CONFIG,
                                    Scenario.efl(250), runs=5, master_seed=9)
        b = collect_execution_times(stream_trace, self.CONFIG,
                                    Scenario.efl(250), runs=5, master_seed=9)
        assert a.execution_times == b.execution_times
