"""Tests for EoM random and LRU replacement policies."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.mem.replacement import EvictOnMissRandom, LRUReplacement, make_replacement
from repro.utils.rng import MultiplyWithCarry


class TestEvictOnMissRandom:
    def test_chooses_among_candidates(self):
        policy = EvictOnMissRandom(MultiplyWithCarry(1))
        policy.attach(4, 4)
        for _ in range(200):
            assert policy.choose_victim(0, (1, 3)) in (1, 3)

    def test_single_candidate_needs_no_draw(self):
        rng = MultiplyWithCarry(1)
        policy = EvictOnMissRandom(rng)
        state_before = rng.state()
        assert policy.choose_victim(0, (2,)) == 2
        assert rng.state() == state_before

    def test_uniform_victims(self):
        policy = EvictOnMissRandom(MultiplyWithCarry(7))
        policy.attach(1, 8)
        counts = [0] * 8
        draws = 8000
        for _ in range(draws):
            counts[policy.choose_victim(0, tuple(range(8)))] += 1
        for count in counts:
            assert abs(count - draws / 8) < draws / 8 * 0.15

    def test_stateless_hooks_are_noops(self):
        policy = EvictOnMissRandom(MultiplyWithCarry(1))
        policy.attach(2, 2)
        policy.on_hit(0, 1)
        policy.on_fill(1, 0)
        policy.on_invalidate(0, 0)  # must not raise

    def test_empty_candidates_rejected(self):
        policy = EvictOnMissRandom(MultiplyWithCarry(1))
        with pytest.raises(SimulationError):
            policy.choose_victim(0, ())

    def test_is_randomised(self):
        assert EvictOnMissRandom(MultiplyWithCarry(1)).is_randomised is True


class TestLRU:
    def make(self, sets=2, ways=4):
        policy = LRUReplacement()
        policy.attach(sets, ways)
        return policy

    def test_victim_is_least_recent(self):
        policy = self.make()
        for way in (0, 1, 2, 3):
            policy.on_fill(0, way)
        # way 0 is now least recently used.
        assert policy.choose_victim(0, (0, 1, 2, 3)) == 0

    def test_hit_refreshes(self):
        policy = self.make()
        for way in (0, 1, 2, 3):
            policy.on_fill(0, way)
        policy.on_hit(0, 0)
        assert policy.choose_victim(0, (0, 1, 2, 3)) == 1

    def test_candidate_restriction(self):
        policy = self.make()
        for way in (0, 1, 2, 3):
            policy.on_fill(0, way)
        # Restricted to {2, 3}: 2 is older than 3.
        assert policy.choose_victim(0, (2, 3)) == 2

    def test_sets_are_independent(self):
        policy = self.make()
        policy.on_fill(0, 3)
        assert policy.choose_victim(1, (0, 1, 2, 3)) != 3 or True
        # set 1 untouched: victim is its initial LRU order (way 3 last).
        assert policy.choose_victim(1, (0, 1, 2, 3)) == 3

    def test_invalidate_demotes(self):
        policy = self.make()
        for way in (0, 1, 2, 3):
            policy.on_fill(0, way)
        policy.on_invalidate(0, 3)
        assert policy.choose_victim(0, (0, 1, 2, 3)) == 3

    def test_use_before_attach_rejected(self):
        policy = LRUReplacement()
        with pytest.raises(SimulationError):
            policy.choose_victim(0, (0,))

    def test_unknown_candidates_rejected(self):
        policy = self.make(ways=2)
        with pytest.raises(SimulationError):
            policy.choose_victim(0, (7,))

    def test_not_randomised(self):
        assert LRUReplacement().is_randomised is False


class TestFactory:
    def test_eom_requires_rng(self):
        with pytest.raises(ConfigurationError):
            make_replacement("eom")

    def test_eom(self):
        assert isinstance(
            make_replacement("eom", MultiplyWithCarry(1)), EvictOnMissRandom
        )

    def test_lru(self):
        assert isinstance(make_replacement("lru"), LRUReplacement)

    def test_unknown(self):
        with pytest.raises(ConfigurationError):
            make_replacement("fifo")
