"""Tests for byte-address / line-address arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.mem.address import block_offset, bytes_to_lines, line_address


class TestLineAddress:
    def test_basic(self):
        assert line_address(0, 16) == 0
        assert line_address(15, 16) == 0
        assert line_address(16, 16) == 1
        assert line_address(0x1234, 16) == 0x123

    def test_rejects_non_power_of_two_line(self):
        with pytest.raises(ConfigurationError):
            line_address(0x100, 12)

    def test_rejects_negative_address(self):
        with pytest.raises(ConfigurationError):
            line_address(-1, 16)

    @given(
        addr=st.integers(min_value=0, max_value=2**40),
        shift=st.integers(min_value=1, max_value=8),
    )
    def test_consistent_with_division(self, addr, shift):
        line_size = 1 << shift
        assert line_address(addr, line_size) == addr // line_size


class TestBlockOffset:
    def test_basic(self):
        assert block_offset(0x13, 16) == 3
        assert block_offset(0x10, 16) == 0

    @given(
        addr=st.integers(min_value=0, max_value=2**40),
        shift=st.integers(min_value=1, max_value=8),
    )
    def test_reconstruction(self, addr, shift):
        line_size = 1 << shift
        reconstructed = line_address(addr, line_size) * line_size + block_offset(
            addr, line_size
        )
        assert reconstructed == addr


class TestBytesToLines:
    def test_exact(self):
        assert bytes_to_lines(64, 16) == 4

    def test_rounds_up(self):
        assert bytes_to_lines(65, 16) == 5
        assert bytes_to_lines(1, 16) == 1

    def test_zero(self):
        assert bytes_to_lines(0, 16) == 0
