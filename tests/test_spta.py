"""Tests for the static probabilistic timing analysis module."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.mem.cache import Cache, CacheGeometry
from repro.mem.placement import RandomPlacement
from repro.mem.replacement import EvictOnMissRandom
from repro.pta.spta import (
    access_miss_probabilities,
    execution_time_distribution,
    expected_misses,
    miss_count_distribution,
    reuse_distances,
    static_pwcet,
)
from repro.utils.rng import MultiplyWithCarry


class TestReuseDistances:
    def test_basic(self):
        assert reuse_distances([1, 2, 3, 1, 1]) == [None, None, None, 2, 0]

    def test_all_cold(self):
        assert reuse_distances([1, 2, 3]) == [None, None, None]

    def test_repeats_do_not_inflate(self):
        # 2 appears twice in the window of the second 1: one distinct line.
        assert reuse_distances([1, 2, 2, 1]) == [None, None, 0, 1]

    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1,
                    max_size=60))
    @settings(max_examples=40)
    def test_distances_bounded_by_distinct_lines(self, lines):
        for line, distance in zip(lines, reuse_distances(lines)):
            if distance is not None:
                assert 0 <= distance < len(set(lines))


class TestMissProbabilities:
    def test_cold_accesses_are_certain_misses(self):
        probs = access_miss_probabilities([1, 2, 3], 64, 4)
        assert probs == [1.0, 1.0, 1.0]

    def test_immediate_reuse_never_misses(self):
        probs = access_miss_probabilities([1, 1], 64, 4)
        assert probs[1] == 0.0

    def test_longer_reuse_higher_probability(self):
        short = access_miss_probabilities([1, 2, 1], 64, 4)[-1]
        long = access_miss_probabilities([1] + list(range(2, 40)) + [1], 64, 4)[-1]
        assert long > short

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            access_miss_probabilities([], 64, 4)

    @given(st.lists(st.integers(min_value=0, max_value=30), min_size=1,
                    max_size=50))
    @settings(max_examples=40)
    def test_all_probabilities_valid(self, lines):
        for p in access_miss_probabilities(lines, 16, 2):
            assert 0.0 <= p <= 1.0

    def test_expected_misses_tracks_simulation(self):
        """SPTA's expected miss count vs the simulated TR cache on a
        sweep workload."""
        sets, ways = 32, 4
        lines = list(range(24)) * 10  # 10 sweeps of 24 lines
        predicted = expected_misses(lines, sets, ways)
        measured = []
        for seed in range(40):
            geometry = CacheGeometry(size_bytes=sets * ways * 16,
                                     line_size=16, ways=ways)
            cache = Cache(
                geometry,
                RandomPlacement(sets, rii=seed * 13 + 1),
                EvictOnMissRandom(MultiplyWithCarry(seed)),
            )
            for line in lines:
                cache.access(line)
            measured.append(cache.stats.misses)
        mean_measured = sum(measured) / len(measured)
        assert mean_measured == pytest.approx(predicted, rel=0.30)


class TestMissCountDistribution:
    def test_deterministic_cases(self):
        assert miss_count_distribution([1.0, 1.0]) == [0.0, 0.0, 1.0]
        assert miss_count_distribution([0.0, 0.0]) == [1.0, 0.0, 0.0]

    def test_sums_to_one(self):
        pmf = miss_count_distribution([0.1, 0.5, 0.9, 0.3])
        assert sum(pmf) == pytest.approx(1.0)

    def test_mean_matches_sum_of_probs(self):
        probs = [0.2, 0.7, 0.4]
        pmf = miss_count_distribution(probs)
        mean = sum(j * mass for j, mass in enumerate(pmf))
        assert mean == pytest.approx(sum(probs))

    def test_rejects_bad_probability(self):
        with pytest.raises(AnalysisError):
            miss_count_distribution([1.5])


class TestExecutionTime:
    def test_distribution_support(self):
        lines = [1, 2, 1, 2]
        etp = execution_time_distribution(lines, 64, 4, hit_latency=1,
                                          miss_latency=101)
        # Total time = 4*1 + j*100 for j misses.
        assert all((lat - 4) % 100 == 0 for lat in etp.latencies)
        assert sum(etp.probabilities) == pytest.approx(1.0)

    def test_mean_consistency(self):
        lines = list(range(8)) * 4
        etp = execution_time_distribution(lines, 16, 2, 1, 101)
        expected = len(lines) * 1 + expected_misses(lines, 16, 2) * 100
        assert etp.mean() == pytest.approx(expected)

    def test_static_pwcet_bounds_distribution(self):
        lines = list(range(12)) * 6
        bound = static_pwcet(lines, 16, 2, 1, 101, exceedance_prob=1e-9)
        etp = execution_time_distribution(lines, 16, 2, 1, 101)
        assert etp.exceedance(bound) <= 1e-9

    def test_static_pwcet_monotone_in_probability(self):
        lines = list(range(12)) * 6
        loose = static_pwcet(lines, 16, 2, 1, 101, exceedance_prob=1e-3)
        tight = static_pwcet(lines, 16, 2, 1, 101, exceedance_prob=1e-12)
        assert tight >= loose

    def test_rejects_bad_latencies(self):
        with pytest.raises(AnalysisError):
            execution_time_distribution([1], 16, 2, 10, 5)

    def test_rejects_bad_probability(self):
        with pytest.raises(AnalysisError):
            static_pwcet([1, 2], 16, 2, 1, 101, exceedance_prob=0.0)
