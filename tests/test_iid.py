"""Tests for the Wald-Wolfowitz and Kolmogorov-Smirnov i.i.d. tests."""

from __future__ import annotations

import random

import pytest

from repro.errors import AnalysisError
from repro.pta.iid import (
    FULL_CAMPAIGN_RUNS,
    MBPTA_MIN_IID_RUNS,
    WW_CRITICAL_5PCT,
    _normal_quantile,
    iid_assert_thresholds,
    iid_test,
    kolmogorov_smirnov_test,
    wald_wolfowitz_test,
)


def iid_sample(n, seed=0):
    rng = random.Random(seed)
    return [rng.gauss(100, 10) for _ in range(n)]


class TestWaldWolfowitz:
    def test_iid_sample_passes(self):
        passes = sum(
            wald_wolfowitz_test(iid_sample(300, seed=s)).passes()
            for s in range(40)
        )
        # At the 5% level ~95% of i.i.d. samples must pass.
        assert passes >= 34

    def test_alternating_sequence_rejected(self):
        """A strictly alternating sequence has far too many runs."""
        sample = [1.0, 2.0] * 150
        result = wald_wolfowitz_test(sample)
        assert result.statistic > WW_CRITICAL_5PCT
        assert not result.passes()

    def test_trending_sequence_rejected(self):
        """A monotone drift has far too few runs."""
        sample = [float(i) for i in range(300)]
        result = wald_wolfowitz_test(sample)
        assert result.statistic < -WW_CRITICAL_5PCT
        assert not result.passes()

    def test_constant_sample_passes_trivially(self):
        result = wald_wolfowitz_test([5.0] * 100)
        assert result.statistic == 0.0
        assert result.passes()

    def test_run_count(self):
        result = wald_wolfowitz_test([1, 9, 1, 9, 1, 9, 1, 9])
        assert result.runs == 8
        assert result.n_above == result.n_below == 4


class TestKolmogorovSmirnov:
    def test_identical_distributions_pass(self):
        passes = sum(
            kolmogorov_smirnov_test(
                iid_sample(200, seed=s), iid_sample(200, seed=1000 + s)
            ).passes()
            for s in range(40)
        )
        assert passes >= 34

    def test_shifted_distributions_rejected(self):
        a = iid_sample(300, seed=1)
        b = [x + 20 for x in iid_sample(300, seed=2)]
        result = kolmogorov_smirnov_test(a, b)
        assert result.p_value < 0.05

    def test_statistic_bounds(self):
        result = kolmogorov_smirnov_test([1, 2, 3], [100, 200, 300])
        assert result.statistic == pytest.approx(1.0)
        assert result.p_value < 0.05

    def test_identical_samples(self):
        sample = iid_sample(100, seed=3)
        result = kolmogorov_smirnov_test(sample, list(sample))
        assert result.statistic == pytest.approx(0.0)
        assert result.p_value == pytest.approx(1.0)

    def test_needs_two_observations(self):
        with pytest.raises(AnalysisError):
            kolmogorov_smirnov_test([1.0], [1.0, 2.0])


class TestCombined:
    def test_iid_data_passes_both(self):
        result = iid_test(iid_sample(400, seed=7))
        assert result.passed
        assert abs(result.ww.statistic) < WW_CRITICAL_5PCT
        assert result.ks.p_value > 0.05

    def test_drifting_data_fails(self):
        """A platform drifting between early and late runs must fail KS."""
        rng = random.Random(5)
        sample = [rng.gauss(100, 5) for _ in range(200)]
        sample += [rng.gauss(130, 5) for _ in range(200)]
        result = iid_test(sample)
        assert not result.passed

    def test_too_small_sample_rejected(self):
        with pytest.raises(AnalysisError):
            iid_test([1.0] * 10)


class TestNormalQuantile:
    def test_matches_known_values(self):
        # Standard normal quantiles to 4+ decimal places.
        assert _normal_quantile(0.975) == pytest.approx(1.959964, abs=1e-4)
        assert _normal_quantile(0.995) == pytest.approx(2.575829, abs=1e-4)
        assert _normal_quantile(0.5) == pytest.approx(0.0, abs=1e-9)

    def test_symmetry(self):
        assert _normal_quantile(0.025) == pytest.approx(
            -_normal_quantile(0.975), abs=1e-9
        )

    def test_rejects_out_of_range(self):
        with pytest.raises(AnalysisError):
            _normal_quantile(0.0)
        with pytest.raises(AnalysisError):
            _normal_quantile(1.5)


class TestAssertThresholds:
    def test_refuses_below_minimum_runs(self):
        with pytest.raises(AnalysisError, match="skip"):
            iid_assert_thresholds(MBPTA_MIN_IID_RUNS - 1)

    def test_paper_thresholds_at_full_scale(self):
        assert iid_assert_thresholds(FULL_CAMPAIGN_RUNS, comparisons=20) == (
            WW_CRITICAL_5PCT, 0.05,
        )

    def test_single_comparison_uses_paper_thresholds(self):
        assert iid_assert_thresholds(80, comparisons=1) == (WW_CRITICAL_5PCT, 0.05)

    def test_bonferroni_weakens_per_test_thresholds(self):
        ww_critical, ks_alpha = iid_assert_thresholds(80, comparisons=20)
        # Family-wise alpha split 20 ways: stricter quantile, looser
        # per-test verdicts (higher critical value, lower alpha).
        assert ww_critical > WW_CRITICAL_5PCT
        assert ks_alpha == pytest.approx(0.05 / 20)
        assert ww_critical == pytest.approx(
            _normal_quantile(1 - ks_alpha / 2), abs=1e-9
        )

    def test_rejects_bad_comparisons(self):
        with pytest.raises(AnalysisError):
            iid_assert_thresholds(80, comparisons=0)
