"""PTA statistics equivalence: vectorised vs scalar reference forms.

The :mod:`tests.test_hotpath` analogue for the analysis layer: the
NumPy-vectorised EVT and i.i.d. statistics (the forms adaptive
campaigns re-evaluate at every wave boundary) must agree with the
preserved ``math``-only reference implementations in
:mod:`repro.pta.reference` on randomised samples.

Integer-valued comparisons (block maxima, run counts, above/below
splits) are exact.  Floating comparisons use a tight relative
tolerance: the reference sums with :func:`math.fsum` while NumPy uses
pairwise summation, so the two are equal to rounding, not bit-for-bit.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.pta.evt import block_maxima, fit_gumbel_pwm
from repro.pta.iid import kolmogorov_smirnov_test, wald_wolfowitz_test
from repro.pta.reference import (
    block_maxima_reference,
    fit_gumbel_pwm_reference,
    kolmogorov_smirnov_reference,
    wald_wolfowitz_reference,
)

REL = 1e-9

times = st.floats(min_value=1.0, max_value=1e9, allow_nan=False,
                  allow_infinity=False)
samples = st.lists(times, min_size=4, max_size=120)


def close(a: float, b: float) -> bool:
    return a == pytest.approx(b, rel=REL, abs=1e-12)


class TestBlockMaxima:
    @given(samples, st.integers(min_value=1, max_value=10))
    @settings(max_examples=200, deadline=None)
    def test_matches_reference(self, sample, block_size):
        if len(sample) // block_size < 2:
            return
        assert block_maxima(sample, block_size) == \
            block_maxima_reference(sample, block_size)


class TestGumbelFit:
    @given(st.lists(times, min_size=2, max_size=120))
    @settings(max_examples=200, deadline=None)
    def test_matches_reference(self, sample):
        fast = fit_gumbel_pwm(sample)
        slow = fit_gumbel_pwm_reference(sample)
        assert close(fast.location, slow.location)
        assert close(fast.scale, slow.scale)

    def test_scale_clamped_to_zero_in_both(self):
        # A strictly decreasing "sorted-by-rank" weighting can push the
        # raw PWM scale negative on tiny degenerate samples; both forms
        # clamp identically.
        sample = [10.0, 10.0, 10.0, 1.0]
        assert fit_gumbel_pwm(sample).scale == \
            fit_gumbel_pwm_reference(sample).scale


class TestWaldWolfowitz:
    def assert_agree(self, sample):
        # Tiny post-tie samples make the runs variance degenerate; the
        # two implementations must then refuse identically, not just
        # agree on the happy path.
        try:
            fast = wald_wolfowitz_test(sample)
        except AnalysisError:
            with pytest.raises(AnalysisError):
                wald_wolfowitz_reference(sample)
            return
        slow = wald_wolfowitz_reference(sample)
        assert (fast.runs, fast.n_above, fast.n_below) == \
            (slow.runs, slow.n_above, slow.n_below)
        assert close(fast.statistic, slow.statistic)

    @given(samples)
    @settings(max_examples=200, deadline=None)
    def test_matches_reference(self, sample):
        self.assert_agree(sample)

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=4,
                    max_size=120))
    @settings(max_examples=200, deadline=None)
    def test_matches_reference_with_heavy_ties(self, values):
        self.assert_agree([float(value) for value in values])

    def test_constant_sample_passes_in_both(self):
        sample = [7.0] * 30
        fast = wald_wolfowitz_test(sample)
        slow = wald_wolfowitz_reference(sample)
        assert fast.statistic == slow.statistic == 0.0
        assert fast.runs == slow.runs == 0


class TestKolmogorovSmirnov:
    @given(st.lists(times, min_size=2, max_size=60),
           st.lists(times, min_size=2, max_size=60))
    @settings(max_examples=200, deadline=None)
    def test_matches_reference(self, first, second):
        fast = kolmogorov_smirnov_test(first, second)
        slow = kolmogorov_smirnov_reference(first, second)
        assert close(fast.statistic, slow.statistic)
        assert close(fast.p_value, slow.p_value)

    def test_identical_samples_agree_at_zero_distance(self):
        sample = list(np.linspace(1.0, 2.0, 25))
        fast = kolmogorov_smirnov_test(sample, sample)
        slow = kolmogorov_smirnov_reference(sample, sample)
        assert fast.statistic == slow.statistic == 0.0
        assert fast.p_value == slow.p_value == 1.0
