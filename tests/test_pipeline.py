"""Tests for the 4-stage in-order pipeline timing model."""

from __future__ import annotations

import pytest

from repro.cpu.isa import OpKind
from repro.cpu.pipeline import InOrderPipeline
from repro.errors import SimulationError


def constant_fetch(latency=1):
    return lambda pc, time: latency


def constant_mem(latency=1):
    return lambda addr, store, time: latency


class TestSteadyState:
    def test_ipc_one_for_alu_stream(self):
        """With all-hit latencies the pipeline retires 1 instr/cycle."""
        pipe = InOrderPipeline(constant_fetch(), constant_mem())
        last = 0
        for i in range(100):
            last = pipe.step(4 * i, OpKind.ALU, None)
        # Fill (4 stages) + 99 more cycles.
        assert last == 4 + 99

    def test_load_stream_all_hits(self):
        pipe = InOrderPipeline(constant_fetch(), constant_mem(1))
        last = 0
        for i in range(50):
            last = pipe.step(4 * i, OpKind.LOAD, 16 * i)
        assert last == 4 + 49

    def test_mul_bound_by_execute_stage(self):
        """MUL (4-cycle execute) limits throughput to 1 per 4 cycles."""
        pipe = InOrderPipeline(constant_fetch(), constant_mem())
        times = [pipe.step(4 * i, OpKind.MUL, None) for i in range(10)]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(gap == 4 for gap in gaps[2:])


class TestStalls:
    def test_fetch_miss_stalls_pipeline(self):
        latencies = iter([100] + [1] * 9)
        pipe = InOrderPipeline(lambda pc, t: next(latencies), constant_mem())
        first = pipe.step(0, OpKind.ALU, None)
        assert first == 103  # 100 fetch + decode + exec + wb

    def test_mem_miss_blocks_younger_instructions(self):
        mem_lat = iter([100])
        pipe = InOrderPipeline(
            constant_fetch(), lambda a, s, t: next(mem_lat, 1)
        )
        miss_done = pipe.step(0, OpKind.LOAD, 0)
        next_done = pipe.step(4, OpKind.ALU, None)
        assert miss_done == 103
        # The ALU retires right behind the load.
        assert next_done == 104

    def test_fetch_cannot_run_unboundedly_ahead(self):
        """Single-entry latches: fetch of i+2 waits for the stalled
        memory stage to drain, so fetch times stay close to the
        memory-stage frontier."""
        observed_fetch_times = []

        def fetch(pc, time):
            observed_fetch_times.append(time)
            return 1

        def mem(addr, store, time):
            return 200  # every load misses badly

        pipe = InOrderPipeline(fetch, mem)
        for i in range(6):
            pipe.step(4 * i, OpKind.LOAD, 16 * i)
        gaps = [
            b - a for a, b in zip(observed_fetch_times, observed_fetch_times[1:])
        ]
        # After the pipeline fills, fetches are spaced by the memory
        # stall (~200), not back-to-back.
        assert all(gap >= 190 for gap in gaps[2:])

    def test_time_monotone_per_stream(self):
        """Memory-access callback times never decrease (the property
        the shared-resource models rely on)."""
        times = []

        def mem(addr, store, time):
            times.append(time)
            return 50 if addr % 32 == 0 else 1

        pipe = InOrderPipeline(constant_fetch(), mem)
        for i in range(50):
            pipe.step(4 * i, OpKind.LOAD, 16 * i)
        assert times == sorted(times)


class TestValidation:
    def test_unknown_kind(self):
        pipe = InOrderPipeline(constant_fetch(), constant_mem())
        with pytest.raises(SimulationError):
            pipe.step(0, 99, None)

    def test_zero_latency_rejected(self):
        pipe = InOrderPipeline(constant_fetch(), constant_mem(0))
        with pytest.raises(SimulationError):
            pipe.step(0, OpKind.LOAD, 0)

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            InOrderPipeline(constant_fetch(), constant_mem(), start_time=-1)

    def test_instruction_counter(self):
        pipe = InOrderPipeline(constant_fetch(), constant_mem())
        for i in range(7):
            pipe.step(4 * i, OpKind.ALU, None)
        assert pipe.instructions == 7

    def test_frontier_tracks_next_fetch(self):
        pipe = InOrderPipeline(constant_fetch(), constant_mem())
        assert pipe.frontier == 0
        pipe.step(0, OpKind.ALU, None)
        assert pipe.frontier >= 1
