"""Equivalence and eligibility tests for the lock-step batch engine.

The batch engine is only allowed to exist because it is bit-identical
to the scalar interpreter: same execution times, same per-run cache
counters, same checksums, same seed provenance.  These tests assert
that contract for every analysis scenario class the paper uses
(TR+EFL, TR isolation, CP, TD), plus the engine-selection policy, the
strict-mode failure ergonomics and the fallback path.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from tests.conftest import make_stream_trace

from repro.core.config import OperationMode
from repro.errors import ConfigurationError, SimulationError
from repro.sim.backend import (
    RetryPolicy,
    RunObserver,
    SerialBackend,
    installed_fault_plan,
)
from repro.sim.batch import BatchBackend, ENGINE_NAMES
from repro.sim.campaign import CampaignResult, collect_execution_times
from repro.sim.checkpoint import CampaignCheckpoint
from repro.sim.config import Scenario, SystemConfig
from repro.sim.faults import FaultPlan
from repro.sim.simulator import RunRequest, batch_ineligibility
from repro.utils.rng import derive_seeds

CONFIG = SystemConfig(l1_size=256, llc_size=2048)
ANALYSIS = OperationMode.ANALYSIS

#: One scenario per class of the paper's analysis campaigns, plus the
#: fixed-MID EFL variant (a different CRG/ACU draw pattern) and the TD
#: substrate (modulo + LRU: no hardware randomness at all).
SCENARIO_CLASSES = [
    pytest.param(CONFIG, Scenario.efl(250), id="tr-efl"),
    pytest.param(CONFIG, Scenario.efl(250, randomise_mid=False), id="tr-efl-fixed"),
    pytest.param(CONFIG, Scenario.uncontrolled(mode=ANALYSIS), id="tr-isolation"),
    pytest.param(
        CONFIG,
        Scenario.cache_partitioning(2, num_cores=4, mode=ANALYSIS),
        id="cp",
    ),
    pytest.param(
        replace(CONFIG, placement="modulo", replacement="lru"),
        Scenario.uncontrolled(mode=ANALYSIS),
        id="td",
    ),
]


def record_key(record):
    return (
        record.index,
        record.seed,
        record.cycles,
        record.instructions,
        record.llc_hits,
        record.llc_misses,
        record.llc_forced_evictions,
        record.efl_stall_cycles,
        record.efl_evictions,
        record.memory_reads,
        record.memory_writes,
    )


@pytest.fixture(scope="module")
def trace():
    return make_stream_trace("batcheq", words=48, sweeps=3, store_every=2)


class TestBitIdentity:
    @pytest.mark.parametrize("config, scenario", SCENARIO_CLASSES)
    def test_campaign_matches_scalar(self, trace, config, scenario):
        scalar = collect_execution_times(
            trace, config, scenario, runs=14, master_seed=9, engine="scalar"
        )
        batch = collect_execution_times(
            trace, config, scenario, runs=14, master_seed=9, engine="batch"
        )
        assert batch.execution_times == scalar.execution_times
        assert batch.seeds == scalar.seeds
        assert batch.instructions == scalar.instructions
        assert [record_key(r) for r in batch.records] == \
            [record_key(r) for r in scalar.records]
        assert batch.backend == "batch"
        assert scalar.backend == "serial"

    @pytest.mark.parametrize("config, scenario", SCENARIO_CLASSES)
    def test_outcome_checksums_match_scalar(self, trace, config, scenario):
        seeds = derive_seeds(21, 6)
        template = RunRequest.isolation(trace, config, scenario, seeds[0])
        requests = [template.with_run(i, seed) for i, seed in enumerate(seeds)]
        scalar = SerialBackend().execute(requests)
        batch = BatchBackend(strict=True).execute(requests)
        assert [o.checksum for o in batch] == [o.checksum for o in scalar]
        assert [o.result for o in batch] == [o.result for o in scalar]
        assert all(o.wall_time_s > 0 for o in batch)

    def test_chunked_lanes_match_unchunked(self, trace):
        seeds = derive_seeds(3, 13)
        template = RunRequest.isolation(trace, CONFIG, Scenario.efl(250), seeds[0])
        requests = [template.with_run(i, seed) for i, seed in enumerate(seeds)]
        whole = BatchBackend(strict=True).execute(requests)
        chunked = BatchBackend(strict=True, max_lanes=4).execute(requests)
        assert [o.checksum for o in chunked] == [o.checksum for o in whole]

    def test_store_free_trace(self, trace):
        loads_only = make_stream_trace("loads", words=32, sweeps=2)
        scalar = collect_execution_times(
            loads_only, CONFIG, Scenario.efl(100), runs=8, master_seed=2,
            engine="scalar",
        )
        batch = collect_execution_times(
            loads_only, CONFIG, Scenario.efl(100), runs=8, master_seed=2,
            engine="batch",
        )
        assert batch.execution_times == scalar.execution_times

    def test_resume_across_engines(self, trace, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        scenario = Scenario.efl(250)
        reference = collect_execution_times(
            trace, CONFIG, scenario, runs=12, master_seed=4, engine="scalar"
        )

        class KillAfter(RunObserver):
            def __init__(self, limit):
                self.limit = limit
                self.seen = 0

            def on_run(self, record):
                self.seen += 1
                if self.seen >= self.limit:
                    raise KeyboardInterrupt

        # Kill a scalar campaign mid-flight, then resume it on the
        # batch engine: the journalled prefix plus the vectorised
        # remainder must equal the uninterrupted scalar sample.
        with pytest.raises(KeyboardInterrupt):
            collect_execution_times(
                trace, CONFIG, scenario, runs=12, master_seed=4,
                engine="scalar", observer=KillAfter(5),
                checkpoint=CampaignCheckpoint(journal, resume=True),
            )
        survived = len(journal.read_text().splitlines()) - 1
        assert survived >= 5
        resumed = collect_execution_times(
            trace, CONFIG, scenario, runs=12, master_seed=4, engine="batch",
            checkpoint=CampaignCheckpoint(journal, resume=True),
        )
        assert resumed.resumed_runs == survived
        assert resumed.execution_times == reference.execution_times
        assert resumed.seeds == reference.seeds


class TestEngineSelection:
    def test_auto_upgrades_default_backend(self, trace):
        result = collect_execution_times(
            trace, CONFIG, Scenario.efl(250), runs=5, master_seed=1
        )
        # auto prefers the grouped-opcode kernel form of the batch
        # engine on default semantics.
        assert result.backend == "kernel"
        assert all(r.wall_time_s > 0 for r in result.records)
        assert result.runs_per_second > 0

    def test_auto_upgrades_plain_serial_backend(self, trace):
        result = collect_execution_times(
            trace, CONFIG, Scenario.efl(250), runs=5, master_seed=1,
            backend=SerialBackend(),
        )
        assert result.backend == "kernel"

    def test_auto_keeps_retrying_serial_backend(self, trace):
        result = collect_execution_times(
            trace, CONFIG, Scenario.efl(250), runs=5, master_seed=1,
            backend=SerialBackend(retry=RetryPolicy(max_attempts=2)),
        )
        assert result.backend == "serial"

    def test_auto_keeps_serial_subclasses(self, trace):
        class Counting(SerialBackend):
            pass

        result = collect_execution_times(
            trace, CONFIG, Scenario.efl(250), runs=5, master_seed=1,
            backend=Counting(),
        )
        assert result.backend == "serial"

    def test_auto_falls_back_for_deployment_mode(self, trace):
        result = collect_execution_times(
            trace, CONFIG, Scenario.efl(250, mode=OperationMode.DEPLOYMENT),
            runs=5, master_seed=1,
        )
        assert result.backend == "serial"

    def test_scalar_never_upgrades(self, trace):
        result = collect_execution_times(
            trace, CONFIG, Scenario.efl(250), runs=5, master_seed=1,
            engine="scalar",
        )
        assert result.backend == "serial"

    def test_unknown_engine_rejected(self, trace):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            collect_execution_times(
                trace, CONFIG, Scenario.efl(250), runs=5, engine="warp"
            )

    def test_engine_names_exported(self):
        assert ENGINE_NAMES == ("auto", "scalar", "batch", "sharded", "kernel")


class TestStrictEligibility:
    def test_deployment_mode_named_in_error(self, trace):
        with pytest.raises(ConfigurationError, match="analysis-mode"):
            collect_execution_times(
                trace, CONFIG, Scenario.efl(250, mode=OperationMode.DEPLOYMENT),
                runs=4, master_seed=1, engine="batch",
            )

    def test_profile_named_in_error(self, trace):
        with pytest.raises(ConfigurationError, match="[Pp]rofil"):
            collect_execution_times(
                trace, CONFIG, Scenario.efl(250), runs=4, master_seed=1,
                engine="batch", profile=True,
            )

    def test_cycle_budget_named_in_error(self, trace):
        with pytest.raises(ConfigurationError, match="cycle-budget"):
            collect_execution_times(
                trace, CONFIG, Scenario.efl(250), runs=4, master_seed=1,
                engine="batch", cycle_budget=10**9,
            )

    def test_write_through_ablation_named_in_error(self, trace):
        with pytest.raises(ConfigurationError, match="write-through"):
            collect_execution_times(
                trace, replace(CONFIG, dl1_write_back=False), Scenario.efl(250),
                runs=4, master_seed=1, engine="batch",
            )

    def test_fault_plan_makes_campaign_ineligible(self, trace):
        plan = FaultPlan(seed=1, crash_rate=0.5)
        with installed_fault_plan(plan):
            with pytest.raises(ConfigurationError, match="fault-injection"):
                collect_execution_times(
                    trace, CONFIG, Scenario.efl(250), runs=4, master_seed=1,
                    engine="batch",
                )

    def test_heterogeneous_requests_rejected(self, trace):
        other = make_stream_trace("other", words=16, sweeps=1)
        a = RunRequest.isolation(trace, CONFIG, Scenario.efl(250), 1, index=0)
        b = RunRequest.isolation(other, CONFIG, Scenario.efl(250), 2, index=1)
        with pytest.raises(ConfigurationError, match="heterogeneous"):
            BatchBackend(strict=True).execute([a, b])

    def test_batch_ineligibility_none_for_analysis_isolation(self, trace):
        request = RunRequest.isolation(trace, CONFIG, Scenario.efl(250), 1)
        assert batch_ineligibility(request) is None

    def test_invalid_max_lanes_rejected(self):
        with pytest.raises(ConfigurationError, match="max_lanes"):
            BatchBackend(max_lanes=0)


class TestFallback:
    def test_non_strict_falls_back_and_reports(self, trace):
        messages = []

        class Recorder(RunObserver):
            def on_message(self, message):
                messages.append(message)

        scenario = Scenario.efl(250, mode=OperationMode.DEPLOYMENT)
        seeds = derive_seeds(11, 4)
        template = RunRequest.isolation(trace, CONFIG, scenario, seeds[0])
        requests = [template.with_run(i, seed) for i, seed in enumerate(seeds)]
        backend = BatchBackend()
        outcomes = backend.execute(requests, observer=Recorder())
        reference = SerialBackend().execute(requests)
        assert [o.checksum for o in outcomes] == [o.checksum for o in reference]
        assert backend.name == "serial"
        assert any("falling back" in message for message in messages)

    def test_empty_request_list(self):
        assert BatchBackend(strict=True).execute([]) == []


class TestEmptySampleErgonomics:
    def test_statistics_name_the_campaign(self):
        result = CampaignResult(
            task="bench", scenario_label="EFL250", execution_times=[],
            instructions=0, runs=0,
        )
        for statistic in ("min_time", "max_time", "mean_time"):
            with pytest.raises(SimulationError) as excinfo:
                getattr(result, statistic)
            message = str(excinfo.value)
            assert "bench" in message
            assert "EFL250" in message
            assert statistic in message

    def test_hwm_index_raises_too(self):
        result = CampaignResult(
            task="bench", scenario_label="EFL250", execution_times=[],
            instructions=0, runs=0,
        )
        with pytest.raises(SimulationError):
            result.hwm_index

    def test_non_empty_sample_unaffected(self):
        result = CampaignResult(
            task="bench", scenario_label="EFL250", execution_times=[3, 1, 2],
            instructions=10, runs=3,
        )
        assert result.min_time == 1
        assert result.max_time == 3
        assert result.mean_time == 2.0
        assert result.hwm_index == 0
