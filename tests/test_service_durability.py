"""Service durability: job journal, admission control, store GC, chaos.

The contracts under test:

* **crash-safe journal** — a SIGKILLed (or abandoned) queue's job list
  is rebuilt from the write-ahead journal; recovered campaigns resume
  through their checkpoints and the final samples are **bit-identical**
  to an uninterrupted run;
* **admission control** — a bounded queue sheds with labelled
  :class:`~repro.errors.AdmissionError` (never deadlocks, never
  queues unboundedly), deadlines shed stale work at pickup, the
  circuit breaker stops re-admitting deterministically failing
  campaigns, and job-level retry budgets absorb transient chaos;
* **store GC** — LRU eviction under byte/entry/age quotas that never
  touches a pinned or in-flight entry, and degrades to a (bit-identical)
  re-simulation, never a wrong sample;
* **accounting** — through all of the above the extended invariant
  ``runs_requested == runs_simulated + runs_served_from_cache +
  runs_shed`` stays exact.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.errors import (
    AdmissionError,
    ConfigurationError,
    JobFailedError,
    ServiceError,
)
from repro.observability import Telemetry
from repro.service import (
    JOB_CANCELLED,
    JOB_DONE,
    JOB_FAILED,
    JOB_SHED,
    AdmissionPolicy,
    CampaignJob,
    CircuitBreaker,
    JobJournal,
    JobQueue,
    ResultStore,
    StoreQuota,
    job_from_spec,
    job_spec,
    recover_jobs,
)
from repro.sim.campaign import collect_execution_times
from repro.sim.checkpoint import CampaignCheckpoint
from repro.sim.config import Scenario, SystemConfig
from repro.sim.faults import ServiceFaultPlan, flip_file_byte, tear_file_tail
from repro.workloads.scale import ExperimentScale
from repro.workloads.suite import build_benchmark

from .conftest import make_stream_trace
from .test_service import _sample, assert_reconciled, make_job


@pytest.fixture
def scenario() -> Scenario:
    return Scenario.efl(mid=100)


def direct_result(job: CampaignJob):
    """The reference sample: the same campaign run without the service."""
    return collect_execution_times(
        job.trace, job.config, job.scenario, job.runs,
        master_seed=job.master_seed, engine="scalar",
    )


# ----------------------------------------------------------------------
# service-level chaos plan
# ----------------------------------------------------------------------
class TestServiceFaultPlan:
    def test_pure_in_seed_index_attempt(self):
        plan = ServiceFaultPlan(seed=11, kill_rate=0.4,
                                torn_journal_rate=0.3)
        twin = ServiceFaultPlan(seed=11, kill_rate=0.4,
                                torn_journal_rate=0.3)
        draws = [plan.fault_for(i, a) for i in range(50) for a in (1,)]
        assert draws == [twin.fault_for(i, a) for i in range(50) for a in (1,)]
        assert {"kill", "torn_journal"} <= set(d for d in draws if d) | {
            "kill", "torn_journal"
        }

    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            ServiceFaultPlan(seed=1, kill_rate=0.7, corrupt_entry_rate=0.5)
        with pytest.raises(ConfigurationError):
            ServiceFaultPlan(seed=1, kill_rate=-0.1)

    def test_faults_stop_after_max_faulty_attempts(self):
        plan = ServiceFaultPlan(seed=3, kill_rate=1.0, max_faulty_attempts=2)
        assert plan.fault_for(5, 1) == "kill"
        assert plan.fault_for(5, 2) == "kill"
        assert plan.fault_for(5, 3) is None

    def test_tear_file_tail(self, tmp_path):
        path = tmp_path / "file.jsonl"
        path.write_bytes(b"a" * 100)
        assert tear_file_tail(path, 30) == 30
        assert path.stat().st_size == 70
        assert tear_file_tail(path, 500) == 70  # clamped to file size
        assert path.stat().st_size == 0

    def test_flip_file_byte(self, tmp_path):
        path = tmp_path / "entry.json"
        path.write_bytes(b"hello")
        flip_file_byte(path, 1)
        assert path.read_bytes() == b"h" + bytes([ord("e") ^ 0xFF]) + b"llo"
        with pytest.raises(ConfigurationError, match="past end"):
            flip_file_byte(path, 99)


# ----------------------------------------------------------------------
# job specs
# ----------------------------------------------------------------------
class TestJobSpec:
    def test_round_trip_preserves_fingerprint(self, tiny_config, scenario):
        job = make_job(tiny_config, scenario, deadline_s=4.5)
        rebuilt = job_from_spec(json.loads(json.dumps(job_spec(job))))
        assert rebuilt.fingerprint == job.fingerprint
        assert rebuilt.runs == job.runs
        assert rebuilt.master_seed == job.master_seed
        assert rebuilt.engine == job.engine
        assert rebuilt.deadline_s == 4.5
        assert rebuilt.scenario == job.scenario
        assert rebuilt.config == job.config
        assert rebuilt.trace.pcs == job.trace.pcs
        assert rebuilt.trace.addresses == job.trace.addresses

    def test_fingerprint_mismatch_refused(self, tiny_config, scenario):
        spec = job_spec(make_job(tiny_config, scenario))
        spec["master_seed"] += 1  # spec no longer matches its fingerprint
        with pytest.raises(ServiceError, match="different campaign"):
            job_from_spec(spec)

    def test_malformed_spec_raises_labelled(self):
        with pytest.raises(ServiceError, match="malformed job spec"):
            job_from_spec({"trace": {"name": "x"}})


# ----------------------------------------------------------------------
# the write-ahead journal
# ----------------------------------------------------------------------
class TestJobJournal:
    def test_admissions_and_states_survive_reopen(
        self, tmp_path, tiny_config, scenario
    ):
        path = tmp_path / "jobs.jsonl"
        job = make_job(tiny_config, scenario)
        job.job_id = "job-000007"
        with JobJournal(path) as journal:
            journal.record_admitted(job)
            journal.record_state(job.job_id, "running", attempt=1)
        with JobJournal(path) as reopened:
            entries = reopened.entries()
        assert [entry.job_id for entry in entries] == ["job-000007"]
        assert entries[0].states == ["queued", "running"]
        assert entries[0].pending
        assert entries[0].fingerprint == job.fingerprint
        assert job_from_spec(entries[0].spec).fingerprint == job.fingerprint

    def test_terminal_states_not_pending(self, tmp_path, tiny_config, scenario):
        path = tmp_path / "jobs.jsonl"
        done = make_job(tiny_config, scenario, seed=1)
        done.job_id = "job-000001"
        killed = make_job(tiny_config, scenario, seed=2)
        killed.job_id = "job-000002"
        with JobJournal(path) as journal:
            journal.record_admitted(done)
            journal.record_admitted(killed)
            journal.record_state(done.job_id, "running")
            journal.record_state(done.job_id, "done")
            journal.record_state(killed.job_id, "running")
            # ...crash: killed never reaches a terminal state
        with JobJournal(path) as reopened:
            pending = reopened.pending()
        assert [entry.job_id for entry in pending] == ["job-000002"]

    def test_torn_tail_truncated_on_reopen(
        self, tmp_path, tiny_config, scenario
    ):
        path = tmp_path / "jobs.jsonl"
        job = make_job(tiny_config, scenario)
        job.job_id = "job-000001"
        with JobJournal(path) as journal:
            journal.record_admitted(job)
            journal.record_state(job.job_id, "running")
        intact = path.stat().st_size
        # A crash mid-append leaves a torn final line (deterministic
        # tear size from the chaos plan).
        plan = ServiceFaultPlan(seed=9, torn_journal_rate=1.0)
        path.write_bytes(
            path.read_bytes() + b'{"event":"state","job_id":"job-000001"'
        )
        tear = plan.torn_tail_bytes(0, 10)
        tear_file_tail(path, tear)
        with JobJournal(path) as reopened:
            entries = reopened.entries()
            assert entries[0].states == ["queued", "running"]
            # appending after recovery lands cleanly past the tear
            reopened.record_state("job-000001", "done")
        with JobJournal(path) as again:
            assert again.entries()[0].states == ["queued", "running", "done"]
        assert path.stat().st_size > intact

    def test_foreign_file_refused(self, tmp_path):
        path = tmp_path / "other.jsonl"
        path.write_text('{"version": 99, "kind": "something-else"}\n')
        with pytest.raises(ServiceError, match="not a version"):
            JobJournal(path)

    def test_next_job_number_continues_sequence(
        self, tmp_path, tiny_config, scenario
    ):
        path = tmp_path / "jobs.jsonl"
        job = make_job(tiny_config, scenario)
        job.job_id = "job-000041"
        with JobJournal(path) as journal:
            journal.record_admitted(job)
        journal = JobJournal(path)
        assert journal.next_job_number() == 42
        queue = JobQueue(workers=1, journal=journal, start=False)
        admitted = queue.submit(make_job(tiny_config, scenario, seed=9))
        assert admitted.job_id == "job-000042"
        queue.shutdown()
        journal.close()


# ----------------------------------------------------------------------
# crash / restart recovery
# ----------------------------------------------------------------------
class TestQueueDurability:
    def test_recover_readmits_interrupted_jobs_bit_identically(
        self, tmp_path, tiny_config, scenario
    ):
        path = tmp_path / "jobs.jsonl"
        store_dir = tmp_path / "store"
        # "Crash": jobs are journalled as admitted but no worker ever
        # runs (start=False) and the process state is dropped.
        journal = JobJournal(path)
        store = ResultStore(store_dir)
        queue = JobQueue(workers=1, journal=journal, start=False)
        job_a = store.get_or_submit(make_job(tiny_config, scenario, seed=1),
                                    queue)
        job_b = store.get_or_submit(make_job(tiny_config, scenario, seed=2),
                                    queue)
        journal.close()
        del queue, store

        # Restart: fresh journal handle, fresh queue, fresh store view.
        telemetry = Telemetry()
        journal2 = JobJournal(path)
        assert [e.job_id for e in journal2.pending()] \
            == [job_a.job_id, job_b.job_id]
        store2 = ResultStore(store_dir)
        with JobQueue(workers=1, telemetry=telemetry,
                      journal=journal2) as queue2:
            recovered = recover_jobs(journal2, queue2, store=store2)
            results = [job.wait(timeout=60) for job in recovered]
        journal2.close()
        assert telemetry.metrics.value("jobs_recovered") == 2
        # Recovered ids never collide with pre-crash ids.
        assert {job.job_id for job in recovered}.isdisjoint(
            {job_a.job_id, job_b.job_id}
        )
        assert _sample(results[0]) == _sample(
            direct_result(make_job(tiny_config, scenario, seed=1))
        )
        assert _sample(results[1]) == _sample(
            direct_result(make_job(tiny_config, scenario, seed=2))
        )
        assert_reconciled(telemetry)

        # A second restart finds nothing pending: the recovery markers
        # prevent double re-admission.
        with JobJournal(path) as journal3:
            assert journal3.pending() == []

    def test_completed_before_crash_answers_from_store(
        self, tmp_path, tiny_config, scenario
    ):
        path = tmp_path / "jobs.jsonl"
        store_dir = tmp_path / "store"
        journal = JobJournal(path)
        store = ResultStore(store_dir)
        telemetry = Telemetry()
        with JobQueue(workers=1, telemetry=telemetry,
                      journal=journal) as queue:
            job = store.get_or_submit(make_job(tiny_config, scenario), queue)
            original = job.wait(timeout=60)
        journal.close()
        # Simulate losing the journal's terminal event (crash between
        # the store write and the journal append): force the entry back
        # to a pending state.
        raw = path.read_text().splitlines()
        kept = [line for line in raw
                if json.loads(line).get("state") != "done"]
        path.write_text("\n".join(kept) + "\n")

        telemetry2 = Telemetry()
        journal2 = JobJournal(path)
        store2 = ResultStore(store_dir)
        with JobQueue(workers=1, telemetry=telemetry2,
                      journal=journal2) as queue2:
            recovered = recover_jobs(journal2, queue2, store=store2)
            result = recovered[0].wait(timeout=60)
        journal2.close()
        # The work completed before the crash: recovery is a store hit,
        # zero runs re-simulated, sample bit-identical.
        assert recovered[0].state == "cached"
        assert telemetry2.metrics.value("runs_simulated") == 0
        assert result.to_dict() == original.to_dict()
        assert_reconciled(telemetry2)

    def test_recovered_job_resumes_through_checkpoint(
        self, tmp_path, tiny_config, scenario
    ):
        ckpt_dir = tmp_path / "ckpt"
        ckpt_dir.mkdir()
        job = make_job(tiny_config, scenario, runs=8)
        reference = direct_result(job)
        # Craft the crash leftovers: a checkpoint holding the first 3
        # completed runs of the campaign.
        checkpoint = CampaignCheckpoint(ckpt_dir / f"{job.fingerprint}.jsonl")
        checkpoint.open(job.trace, job.config, job.scenario,
                        job.master_seed, job.runs)
        for record in reference.records[:3]:
            checkpoint.append(record)
        checkpoint.close()

        telemetry = Telemetry()
        with JobQueue(workers=1, telemetry=telemetry,
                      checkpoint_dir=ckpt_dir) as queue:
            result = queue.submit(job).wait(timeout=60)
        assert result.resumed_runs == 3
        assert telemetry.metrics.value("runs_simulated") == job.runs - 3
        # The 3 taken-over runs land on their own ledger slot.
        assert telemetry.metrics.value("runs_resumed") == 3
        assert _sample(result) == _sample(reference)
        # Success removes the served checkpoint.
        assert not (ckpt_dir / f"{job.fingerprint}.jsonl").exists()

    def test_chaos_killed_worker_retries_bit_identically(
        self, tmp_path, tiny_config, scenario
    ):
        # kill_rate=1.0 with max_faulty_attempts=1: every job's first
        # attempt dies, every second attempt is clean — the retry
        # budget absorbs the crash and the sample is unaffected.
        plan = ServiceFaultPlan(seed=7, kill_rate=1.0, max_faulty_attempts=1)
        telemetry = Telemetry()
        job = make_job(tiny_config, scenario)
        with JobQueue(workers=1, telemetry=telemetry,
                      admission=AdmissionPolicy(retry_budget=1),
                      fault_plan=plan) as queue:
            result = queue.submit(job).wait(timeout=60)
        assert job.attempts == 2
        assert telemetry.metrics.value("jobs_requeued") == 1
        assert _sample(result) == _sample(direct_result(job))

    def test_chaos_kill_without_budget_fails_labelled(
        self, tmp_path, tiny_config, scenario
    ):
        plan = ServiceFaultPlan(seed=7, kill_rate=1.0)
        job = make_job(tiny_config, scenario)
        with JobQueue(workers=1, fault_plan=plan) as queue:
            queue.submit(job)
            with pytest.raises(JobFailedError, match="chaos"):
                job.wait(timeout=60)
        assert job.state == JOB_FAILED

    def test_corrupt_store_entry_chaos_resimulates(
        self, tmp_path, tiny_config, scenario
    ):
        plan = ServiceFaultPlan(seed=13, corrupt_entry_rate=1.0)
        store = ResultStore(tmp_path / "store")
        telemetry = Telemetry()
        with JobQueue(workers=1, telemetry=telemetry) as queue:
            first = make_job(tiny_config, scenario)
            original = store.get_or_submit(first, queue).wait(timeout=60)
            entry_path = store.path_for(first.fingerprint)
            assert plan.fault_for(0) == "corrupt_entry"
            flip_file_byte(
                entry_path,
                plan.corrupt_offset(0, entry_path.stat().st_size),
            )
            second = make_job(tiny_config, scenario)
            recovered = store.get_or_submit(second, queue).wait(timeout=60)
        assert telemetry.metrics.value("store_integrity_failures") == 1
        assert _sample(recovered) == _sample(original)
        assert_reconciled(telemetry)


# ----------------------------------------------------------------------
# admission control & backpressure
# ----------------------------------------------------------------------
class TestAdmission:
    def test_policy_validated(self):
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(max_queue_depth=0)
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(deadline_s=0)
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(retry_budget=-1)
        with pytest.raises(ConfigurationError):
            AdmissionPolicy(breaker_threshold=0)

    def test_full_queue_sheds_with_labelled_error(
        self, tiny_config, scenario
    ):
        telemetry = Telemetry()
        queue = JobQueue(
            workers=1, telemetry=telemetry, start=False,
            admission=AdmissionPolicy(max_queue_depth=2),
        )
        queue.submit(make_job(tiny_config, scenario, seed=1))
        queue.submit(make_job(tiny_config, scenario, seed=2))
        overflow = make_job(tiny_config, scenario, seed=3)
        with pytest.raises(AdmissionError) as excinfo:
            queue.submit(overflow)
        assert excinfo.value.reason == "queue_full"
        assert overflow.state == JOB_SHED
        assert overflow.shed_reason == "queue_full"
        # The shed job's waiters get the same labelled error.
        with pytest.raises(AdmissionError, match="queue_full"):
            overflow.wait(timeout=1)
        assert telemetry.metrics.value("jobs_shed") == 1
        assert telemetry.metrics.value("jobs_shed_queue_full") == 1
        queue.shutdown(wait=False)

    def test_shed_runs_keep_invariant_exact(
        self, tmp_path, tiny_config, scenario
    ):
        store = ResultStore(tmp_path)
        telemetry = Telemetry()
        queue = JobQueue(
            workers=1, telemetry=telemetry, start=False,
            admission=AdmissionPolicy(max_queue_depth=1),
        )
        kept = store.get_or_submit(make_job(tiny_config, scenario, seed=1),
                                   queue)
        shed = make_job(tiny_config, scenario, seed=2)
        with pytest.raises(AdmissionError, match="queue_full"):
            store.get_or_submit(shed, queue)
        # The shed front-door job released its in-flight claim...
        assert shed.fingerprint not in store._inflight
        queue.start()
        kept.wait(timeout=60)
        queue.shutdown()
        # ...and its runs landed on runs_shed, keeping the ledger exact.
        assert telemetry.metrics.value("runs_shed") == shed.runs
        assert_reconciled(telemetry)

    def test_deadline_sheds_stale_job_at_pickup(self, tiny_config, scenario):
        telemetry = Telemetry()
        queue = JobQueue(
            workers=1, telemetry=telemetry, start=False,
            admission=AdmissionPolicy(deadline_s=5.0),
        )
        stale = queue.submit(make_job(tiny_config, scenario, seed=1))
        fresh = queue.submit(make_job(tiny_config, scenario, seed=2))
        stale.submitted_at -= 60  # it has been queued for a minute
        queue.start()
        with pytest.raises(AdmissionError, match="deadline"):
            stale.wait(timeout=60)
        fresh.wait(timeout=60)
        queue.shutdown()
        assert stale.state == JOB_SHED
        assert stale.shed_reason == "deadline"
        assert fresh.state == JOB_DONE
        assert telemetry.metrics.value("jobs_shed_deadline") == 1

    def test_per_job_deadline_overrides_policy(self, tiny_config, scenario):
        queue = JobQueue(workers=1, start=False,
                         admission=AdmissionPolicy(deadline_s=5.0))
        patient = queue.submit(
            make_job(tiny_config, scenario, deadline_s=3600.0)
        )
        patient.submitted_at -= 60  # over the policy default, under its own
        queue.start()
        result = patient.wait(timeout=60)
        queue.shutdown()
        assert patient.state == JOB_DONE
        assert result.runs == patient.runs

    def test_circuit_breaker_stops_deterministic_failures(
        self, tiny_config, scenario
    ):
        telemetry = Telemetry()
        with JobQueue(
            workers=1, telemetry=telemetry,
            admission=AdmissionPolicy(breaker_threshold=1),
        ) as queue:
            # cycle_budget=1 fails deterministically (and is not part
            # of the fingerprint, so the resubmission is a twin).
            doomed = make_job(tiny_config, scenario, cycle_budget=1)
            queue.submit(doomed)
            with pytest.raises(JobFailedError):
                doomed.wait(timeout=60)
            assert queue.breaker.is_open(doomed.fingerprint)

            twin = make_job(tiny_config, scenario, cycle_budget=1)
            with pytest.raises(AdmissionError) as excinfo:
                queue.submit(twin)
            assert excinfo.value.reason == "circuit_open"
            assert telemetry.metrics.value("jobs_shed_circuit_open") == 1

            # A manual reset closes the circuit; the healthy twin runs
            # and its success keeps it closed.
            queue.breaker.reset(doomed.fingerprint)
            healthy = make_job(tiny_config, scenario)
            queue.submit(healthy).wait(timeout=60)
            assert not queue.breaker.is_open(doomed.fingerprint)

    def test_breaker_success_clears_failure_count(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("aaaa")
        breaker.record_success("aaaa")
        breaker.record_failure("aaaa")
        assert not breaker.is_open("aaaa")
        breaker.record_failure("aaaa")
        assert breaker.is_open("aaaa")
        assert breaker.open_fingerprints() == ("aaaa",)
        breaker.reset()
        assert breaker.open_fingerprints() == ()

    def test_transient_failures_never_trip_breaker(
        self, tiny_config, scenario
    ):
        plan = ServiceFaultPlan(seed=5, kill_rate=1.0)
        with JobQueue(
            workers=1, fault_plan=plan,
            admission=AdmissionPolicy(breaker_threshold=1),
        ) as queue:
            job = make_job(tiny_config, scenario)
            queue.submit(job)
            with pytest.raises(JobFailedError):
                job.wait(timeout=60)
            # The chaos kill is transient: the breaker stays closed.
            assert not queue.breaker.is_open(job.fingerprint)

    def test_failed_wait_carries_failure_breakdown(
        self, tiny_config, scenario
    ):
        job = make_job(tiny_config, scenario, cycle_budget=1)
        with JobQueue(workers=1) as queue:
            queue.submit(job)
            with pytest.raises(JobFailedError) as excinfo:
                job.wait(timeout=60)
        error = excinfo.value
        assert error.job_id == job.job_id
        assert len(error.failures) == job.runs
        assert error.deterministic_failures == job.runs
        assert error.transient_failures == 0
        assert "deterministic" in str(error)

    def test_shutdown_nowait_cancels_queued_jobs(self, tiny_config, scenario):
        # Satellite regression: shutdown(wait=False) used to strand
        # queued jobs in a non-terminal state, hanging their waiters.
        telemetry = Telemetry()
        queue = JobQueue(workers=1, telemetry=telemetry, start=False)
        jobs = [queue.submit(make_job(tiny_config, scenario, seed=seed))
                for seed in (1, 2, 3)]
        queue.start()
        queue.shutdown(wait=False)
        for job in jobs:
            # Terminal either way — a waiter never hangs: the worker
            # may have finished a job before the shutdown raced it.
            try:
                job.wait(timeout=10)
            except ServiceError:
                pass
            assert job.done
        states = {job.state for job in jobs}
        assert states <= {JOB_CANCELLED, JOB_DONE, JOB_FAILED}
        assert any(job.state == JOB_CANCELLED for job in jobs)

    def test_health_snapshot_reconciles(self, tmp_path, tiny_config, scenario):
        store = ResultStore(tmp_path)
        telemetry = Telemetry()
        with JobQueue(workers=1, telemetry=telemetry) as queue:
            store.get_or_submit(make_job(tiny_config, scenario), queue) \
                .wait(timeout=60)
            store.get_or_submit(make_job(tiny_config, scenario), queue) \
                .wait(timeout=60)
            health = queue.health()
        assert health["ok"] is True
        assert health["queue_depth"] == 0
        assert health["inflight"] == 0
        assert health["jobs"]["completed"] == 1
        assert health["store"]["hits"] == 1
        runs = health["runs"]
        assert runs["requested"] == (
            runs["simulated"] + runs["resumed"]
            + runs["served_from_cache"] + runs["shed"]
        )
        json.dumps(health)  # JSON-ready
        queue.shutdown()
        assert queue.health()["ok"] is False

    def test_gauges_track_live_queue_state(self, tiny_config, scenario):
        telemetry = Telemetry()
        queue = JobQueue(workers=1, telemetry=telemetry, start=False)
        queue.submit(make_job(tiny_config, scenario, seed=1))
        queue.submit(make_job(tiny_config, scenario, seed=2))
        snapshot = telemetry.metrics.snapshot()
        assert snapshot["gauges"]["job_queue_depth"] == 2
        assert snapshot["gauges"]["jobs_inflight"] == 0
        queue.start()
        queue.shutdown(wait=True)
        assert telemetry.metrics.gauges()["job_queue_depth"] == 0


# ----------------------------------------------------------------------
# store quotas & GC
# ----------------------------------------------------------------------
class TestStoreQuota:
    def test_parse_variants(self):
        assert StoreQuota.parse("100m") == StoreQuota(max_bytes=100 * 1024**2)
        assert StoreQuota.parse("2k:10") \
            == StoreQuota(max_bytes=2048, max_entries=10)
        assert StoreQuota.parse(":10") == StoreQuota(max_entries=10)
        assert StoreQuota.parse("1g::7d") \
            == StoreQuota(max_bytes=1024**3, max_age_s=7 * 86400.0)
        assert StoreQuota.parse("::30m") == StoreQuota(max_age_s=1800.0)
        assert not StoreQuota.parse("::").bounded

    def test_parse_rejects_garbage(self):
        for bad in ("abc", "10m:x", "1:2:3:4", "::1y"):
            with pytest.raises(ConfigurationError):
                StoreQuota.parse(bad)

    def test_bounds_validated(self):
        with pytest.raises(ConfigurationError):
            StoreQuota(max_bytes=0)
        with pytest.raises(ConfigurationError):
            StoreQuota(max_entries=0)
        with pytest.raises(ConfigurationError):
            StoreQuota(max_age_s=0)


def _fill_store(store, tiny_config, scenario, seeds):
    """Simulate one tiny campaign per seed into the store; returns jobs."""
    jobs = []
    for seed in seeds:
        job = make_job(tiny_config, scenario, seed=seed, runs=2)
        store.put(job.fingerprint, direct_result(job))
        jobs.append(job)
    return jobs


class TestStoreGC:
    def test_lru_eviction_by_entry_count(self, tmp_path, tiny_config, scenario):
        store = ResultStore(tmp_path)
        telemetry = Telemetry()
        jobs = _fill_store(store, tiny_config, scenario, seeds=(1, 2, 3))
        # Backdate so LRU order is deterministic: seed1 oldest.  The
        # quota lands after the fill so put()'s auto-GC stays out of
        # the way — this test exercises an explicit gc() call.
        for age, job in zip((300, 200, 100), jobs):
            path = store.path_for(job.fingerprint)
            os.utime(path, (time.time() - age, time.time() - age))
        store.quota = StoreQuota(max_entries=2)
        evicted = store.gc(metrics=telemetry.metrics)
        assert evicted == [jobs[0].fingerprint]
        assert store.fingerprints() == sorted(
            [jobs[1].fingerprint, jobs[2].fingerprint]
        )
        assert telemetry.metrics.value("store_evictions") == 1
        assert telemetry.metrics.value("store_evicted_bytes") > 0

    def test_byte_quota_evicts_until_under(self, tmp_path, tiny_config,
                                           scenario):
        store = ResultStore(tmp_path)
        jobs = _fill_store(store, tiny_config, scenario, seeds=(1, 2, 3))
        sizes = {job.fingerprint: store.path_for(job.fingerprint).stat().st_size
                 for job in jobs}
        total = sum(sizes.values())
        for age, job in zip((300, 200, 100), jobs):
            path = store.path_for(job.fingerprint)
            os.utime(path, (time.time() - age, time.time() - age))
        # Quota that forces exactly the oldest entry out.
        store.quota = StoreQuota(max_bytes=total - 1)
        evicted = store.gc()
        assert evicted == [jobs[0].fingerprint]
        assert store.total_bytes() <= total - sizes[jobs[0].fingerprint]

    def test_age_quota_drops_expired(self, tmp_path, tiny_config, scenario):
        store = ResultStore(tmp_path)
        jobs = _fill_store(store, tiny_config, scenario, seeds=(1, 2))
        store.quota = StoreQuota(max_age_s=100.0)
        old = store.path_for(jobs[0].fingerprint)
        os.utime(old, (time.time() - 1000, time.time() - 1000))
        evicted = store.gc()
        assert evicted == [jobs[0].fingerprint]
        assert store.fingerprints() == [jobs[1].fingerprint]

    def test_pinned_entry_never_evicted(self, tmp_path, tiny_config, scenario):
        store = ResultStore(tmp_path)
        jobs = _fill_store(store, tiny_config, scenario, seeds=(1, 2))
        store.quota = StoreQuota(max_entries=1)
        for age, job in zip((300, 100), jobs):
            path = store.path_for(job.fingerprint)
            os.utime(path, (time.time() - age, time.time() - age))
        store.pin(jobs[0].fingerprint)
        evicted = store.gc()
        # The LRU victim is pinned: GC takes the next candidate instead.
        assert evicted == [jobs[1].fingerprint]
        assert store.fingerprints() == [jobs[0].fingerprint]
        store.unpin(jobs[0].fingerprint)
        with pytest.raises(ServiceError, match="without a matching pin"):
            store.unpin(jobs[0].fingerprint)

    def test_age_quota_spares_pinned_entry(self, tmp_path, tiny_config,
                                           scenario):
        store = ResultStore(tmp_path)
        jobs = _fill_store(store, tiny_config, scenario, seeds=(1,))
        store.quota = StoreQuota(max_age_s=100.0)
        old = store.path_for(jobs[0].fingerprint)
        os.utime(old, (time.time() - 1000, time.time() - 1000))
        store.pin(jobs[0].fingerprint)
        assert store.gc() == []
        assert store.fingerprints() == [jobs[0].fingerprint]

    def test_inflight_claim_is_an_eviction_pin(
        self, tmp_path, tiny_config, scenario
    ):
        store = ResultStore(tmp_path)
        jobs = _fill_store(store, tiny_config, scenario, seeds=(1, 2))
        store.quota = StoreQuota(max_entries=1)
        for age, job in zip((300, 100), jobs):
            path = store.path_for(job.fingerprint)
            os.utime(path, (time.time() - age, time.time() - age))
        # Plant an in-flight claim on the LRU victim: GC must spare it.
        store._inflight[jobs[0].fingerprint] = jobs[0]
        assert jobs[0].fingerprint in store.pinned()
        evicted = store.gc()
        assert evicted == [jobs[1].fingerprint]
        assert jobs[0].fingerprint in store

    def test_verified_read_refreshes_lru_clock(
        self, tmp_path, tiny_config, scenario
    ):
        store = ResultStore(tmp_path)
        jobs = _fill_store(store, tiny_config, scenario, seeds=(1, 2))
        store.quota = StoreQuota(max_entries=1)
        for age, job in zip((300, 200), jobs):
            path = store.path_for(job.fingerprint)
            os.utime(path, (time.time() - age, time.time() - age))
        store.get(jobs[0].fingerprint)  # touch: seed1 is now the MRU
        evicted = store.gc()
        assert evicted == [jobs[1].fingerprint]

    def test_put_runs_gc_automatically(self, tmp_path, tiny_config, scenario):
        store = ResultStore(tmp_path, quota=StoreQuota(max_entries=2))
        telemetry = Telemetry()
        with JobQueue(workers=1, telemetry=telemetry) as queue:
            for seed in (1, 2, 3):
                job = make_job(tiny_config, scenario, seed=seed, runs=2)
                store.get_or_submit(job, queue).wait(timeout=60)
        assert len(store.fingerprints()) == 2
        assert telemetry.metrics.value("store_evictions") == 1
        assert_reconciled(telemetry)

    def test_evicted_campaign_resimulates_bit_identically(
        self, tmp_path, tiny_config, scenario
    ):
        store = ResultStore(tmp_path, quota=StoreQuota(max_entries=1))
        telemetry = Telemetry()
        with JobQueue(workers=1, telemetry=telemetry) as queue:
            first = make_job(tiny_config, scenario, seed=1, runs=2)
            original = store.get_or_submit(first, queue).wait(timeout=60)
            # Push seed1 out of the store...
            store.get_or_submit(
                make_job(tiny_config, scenario, seed=2, runs=2), queue
            ).wait(timeout=60)
            assert first.fingerprint not in store
            # ...and resubmit it: a miss, re-simulated bit-identically.
            again = make_job(tiny_config, scenario, seed=1, runs=2)
            recovered = store.get_or_submit(again, queue).wait(timeout=60)
        assert again.source == "simulated"
        assert _sample(recovered) == _sample(original)
        assert_reconciled(telemetry)


# ----------------------------------------------------------------------
# threaded stress: claim/cancel/evict races
# ----------------------------------------------------------------------
class TestStress:
    def test_exactly_one_simulation_under_gc_hammer(
        self, tmp_path, tiny_config, scenario
    ):
        store = ResultStore(tmp_path, quota=StoreQuota(max_entries=1))
        telemetry = Telemetry()
        stop = threading.Event()
        results, errors = [], []

        def hammer():
            while not stop.is_set():
                store.gc(metrics=telemetry.metrics)

        def submit_one():
            try:
                job = make_job(tiny_config, scenario)
                results.append(
                    store.get_or_submit(job, queue).wait(timeout=60)
                )
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        with JobQueue(workers=3, telemetry=telemetry) as queue:
            gc_thread = threading.Thread(target=hammer)
            gc_thread.start()
            threads = [threading.Thread(target=submit_one) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            stop.set()
            gc_thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads)
        assert not errors
        assert len(results) == 8
        reference = results[0].to_dict()
        assert all(result.to_dict() == reference for result in results)
        # One fingerprint, one simulation — a GC racing the in-flight
        # claim must not turn the claim into a duplicate simulation.
        assert telemetry.metrics.value("runs_simulated") == reference["runs"]
        assert telemetry.metrics.value("store_evictions") == 0
        assert_reconciled(telemetry)

    def test_mixed_claim_cancel_evict_races_reconcile(
        self, tmp_path, tiny_config, scenario
    ):
        # 8 threads x 4 iterations over 2 fingerprints with a 1-entry
        # quota (every persist of one evicts the other) and a
        # deterministic cancel pattern.  The assertions: no thread
        # deadlocks, every wait() terminates, and the extended
        # invariant reconciles exactly.
        store = ResultStore(tmp_path, quota=StoreQuota(max_entries=1))
        telemetry = Telemetry()
        outcomes, errors = [], []

        def worker(worker_index):
            try:
                for iteration in range(4):
                    seed = 1 + (worker_index + iteration) % 2
                    job = make_job(tiny_config, scenario, seed=seed, runs=2)
                    resolved = store.get_or_submit(job, queue)
                    if (worker_index * 7 + iteration) % 3 == 0 \
                            and resolved is job \
                            and (job.job_id or "").startswith("job-"):
                        queue.cancel(job.job_id)
                    try:
                        result = resolved.wait(timeout=60)
                        outcomes.append(("ok", result.execution_times[0]))
                    except ServiceError:
                        outcomes.append(("cancelled", None))
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        with JobQueue(workers=4, telemetry=telemetry) as queue:
            threads = [
                threading.Thread(target=worker, args=(index,))
                for index in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=180)
        assert not any(thread.is_alive() for thread in threads), \
            "stress threads deadlocked"
        assert not errors
        assert len(outcomes) == 8 * 4
        # Cross-check the ledger: every requested run is accounted.
        assert_reconciled(telemetry)
        metrics = telemetry.metrics
        assert metrics.value("runs_requested") == 8 * 4 * 2
        # The store never grew past its quota.
        assert len(store.fingerprints()) <= 1


# ----------------------------------------------------------------------
# full-process SIGKILL + restart (the acceptance scenario)
# ----------------------------------------------------------------------
class TestRestartSIGKILL:
    def test_sigkill_mid_campaign_restart_is_bit_identical(self, tmp_path):
        src = Path(__file__).resolve().parent.parent / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{src}{os.pathsep}" + env.get("PYTHONPATH", "")
        runs = 4000
        base = [
            "--scale", "tiny", "--seed", "3", "--engine", "scalar",
            "--log-level", "quiet",
            "--checkpoint-dir", str(tmp_path / "ckpt"),
            "serve",
            "--journal", str(tmp_path / "jobs.jsonl"),
            "--store", str(tmp_path / "store"),
        ]
        submit = [sys.executable, "-m", "repro.cli"] + base + [
            "--bench", "RS", "--scenario", "EFL100", "--runs", str(runs),
        ]
        process = subprocess.Popen(
            submit, env=env, cwd=tmp_path,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            # Wait until the campaign has checkpointed some runs (the
            # scalar engine flushes one journal line per run), then
            # SIGKILL mid-campaign.
            deadline = time.time() + 120
            progressed = False
            while time.time() < deadline and process.poll() is None:
                checkpoints = list((tmp_path / "ckpt").glob("*.jsonl"))
                if checkpoints:
                    with open(checkpoints[0], "rb") as stream:
                        if stream.read().count(b"\n") >= 8:
                            progressed = True
                            break
                time.sleep(0.02)
            assert process.poll() is None, (
                "campaign finished before the kill; raise `runs`"
            )
            assert progressed, "campaign never checkpointed a run"
        finally:
            process.kill()
            process.wait(timeout=30)
        assert process.returncode == -9  # died by SIGKILL, not cleanly
        assert not (tmp_path / "store").exists() \
            or not list((tmp_path / "store").glob("*.json"))

        # Restart with --resume-jobs, in-process for coverage.
        from repro import cli
        code = cli.main(base + ["--resume-jobs"])
        assert code == 0

        store = ResultStore(tmp_path / "store")
        fingerprints = store.fingerprints()
        assert len(fingerprints) == 1
        recovered = store.get(fingerprints[0])
        assert recovered.resumed_runs > 0  # the checkpoint was used

        trace = build_benchmark(
            "RS", ExperimentScale.from_name("tiny").trace_scale
        )
        reference = collect_execution_times(
            trace, SystemConfig(), Scenario.from_label("EFL100"), runs,
            master_seed=3, engine="scalar",
        )
        assert recovered.execution_times == reference.execution_times
        assert recovered.seeds == reference.seeds
        assert _sample(recovered) == _sample(reference)

        # A third pass is pure cache: nothing pending, nothing simulated.
        code = cli.main(base + ["--resume-jobs"])
        assert code == 0
        with JobJournal(tmp_path / "jobs.jsonl") as journal:
            assert journal.pending() == []


# ----------------------------------------------------------------------
# CLI surface
# ----------------------------------------------------------------------
class TestServeCLI:
    def test_status_unknown_job_is_labelled(self, tmp_path):
        from repro import cli
        with pytest.raises(ConfigurationError, match="unknown job id"):
            cli.main([
                "status", "--store", str(tmp_path), "--job", "cached-feedface",
            ])

    def test_status_queue_local_id_is_labelled(self, tmp_path):
        from repro import cli
        with pytest.raises(ConfigurationError, match="queue-local"):
            cli.main([
                "status", "--store", str(tmp_path), "--job", "job-000001",
            ])

    def test_serve_requires_bench_and_scenario_together(self, tmp_path):
        from repro import cli
        with pytest.raises(ConfigurationError, match="together"):
            cli.main([
                "serve", "--journal", str(tmp_path / "j.jsonl"),
                "--store", str(tmp_path / "s"), "--bench", "RS",
            ])

    def test_serve_without_work_rejected(self, tmp_path):
        from repro import cli
        with pytest.raises(ConfigurationError, match="does nothing"):
            cli.main([
                "serve", "--journal", str(tmp_path / "j.jsonl"),
                "--store", str(tmp_path / "s"),
            ])

    def test_serve_rejects_process_backend(self, tmp_path):
        from repro import cli
        with pytest.raises(ConfigurationError, match="--backend"):
            cli.main([
                "--backend", "process",
                "serve", "--journal", str(tmp_path / "j.jsonl"),
                "--store", str(tmp_path / "s"),
                "--bench", "RS", "--scenario", "EFL100",
            ])

    def test_serve_runs_and_status_reads_back(self, tmp_path, capsys):
        from repro import cli
        code = cli.main([
            "--scale", "tiny", "--seed", "5", "--engine", "scalar",
            "--log-level", "quiet",
            "serve",
            "--journal", str(tmp_path / "jobs.jsonl"),
            "--store", str(tmp_path / "store"),
            "--store-quota", "10m:100",
            "--max-queue", "4",
            "--bench", "RS", "--scenario", "EFL100", "--runs", "6",
            "--json",
        ])
        assert code == 0
        health = json.loads(capsys.readouterr().out)
        assert health["jobs"]["completed"] == 1
        assert health["runs"]["requested"] == 6
        assert health["runs"]["simulated"] == 6

        store = ResultStore(tmp_path / "store")
        fingerprint = store.fingerprints()[0]
        code = cli.main([
            "status", "--store", str(tmp_path / "store"),
            "--job", f"cached-{fingerprint}", "--json",
        ])
        assert code == 0
        status = json.loads(capsys.readouterr().out)
        assert len(status["entries"]) == 1
        assert status["entries"][0]["ok"] is True
        assert status["entries"][0]["runs"] == 6
