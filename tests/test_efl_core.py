"""Tests for the EFL hardware models: config, ACU, CRG, controller."""

from __future__ import annotations

import pytest

from repro.core.acu import AccessControlUnit
from repro.core.config import EFLConfig, OperationMode
from repro.core.crg import CacheRequestGenerator
from repro.core.efl import EFLController
from repro.errors import ConfigurationError, SimulationError
from repro.mem.cache import Cache, CacheGeometry
from repro.mem.placement import RandomPlacement
from repro.mem.replacement import EvictOnMissRandom
from repro.utils.rng import MultiplyWithCarry


def make_llc(size=1024, ways=8, seed=1):
    geometry = CacheGeometry(size_bytes=size, line_size=16, ways=ways)
    return Cache(
        geometry,
        RandomPlacement(geometry.num_sets, rii=3),
        EvictOnMissRandom(MultiplyWithCarry(seed)),
        name="LLC",
    )


class TestEFLConfig:
    def test_basic(self):
        cfg = EFLConfig(mid=500)
        assert cfg.enabled is True
        assert cfg.max_delay == 1000

    def test_disabled(self):
        cfg = EFLConfig.disabled()
        assert cfg.enabled is False
        assert cfg.mid == 0

    def test_deterministic_max_delay(self):
        assert EFLConfig(mid=500, randomise_mid=False).max_delay == 500

    @pytest.mark.parametrize("bad", [-1, 2.5, "500", True])
    def test_rejects_bad_mid(self, bad):
        with pytest.raises(ConfigurationError):
            EFLConfig(mid=bad)


class TestACU:
    def make(self, mid=250, seed=1, randomise=True):
        return AccessControlUnit(
            EFLConfig(mid=mid, randomise_mid=randomise), MultiplyWithCarry(seed)
        )

    def test_initially_allowed(self):
        acu = self.make()
        assert acu.eviction_allowed(0) is True
        assert acu.eviction_grant_time(0) == 0

    def test_eviction_loads_cdc(self):
        acu = self.make()
        acu.record_eviction(100)
        expiry = acu.next_allowed_time()
        assert 100 <= expiry <= 100 + 500  # U[0, 2*MID]

    def test_stall_until_expiry(self):
        acu = self.make(randomise=False, mid=250)
        acu.record_eviction(100)
        assert acu.next_allowed_time() == 350
        assert acu.eviction_grant_time(200) == 350
        assert acu.stall_cycles == 150

    def test_no_stall_after_expiry(self):
        acu = self.make(randomise=False, mid=250)
        acu.record_eviction(100)
        assert acu.eviction_grant_time(400) == 400

    def test_draws_average_mid(self):
        """Random delays must average the desired MID (paper §3.4)."""
        acu = self.make(mid=250, seed=5)
        delays = []
        time = 0
        for _ in range(2000):
            acu.record_eviction(time)
            delays.append(acu.next_allowed_time() - time)
            time = acu.next_allowed_time() + 1
        mean = sum(delays) / len(delays)
        assert abs(mean - 250) < 15

    def test_delays_bounded(self):
        acu = self.make(mid=100, seed=9)
        time = 0
        for _ in range(500):
            acu.record_eviction(time)
            delay = acu.next_allowed_time() - time
            assert 0 <= delay <= 200
            time = acu.next_allowed_time() + 1

    def test_disabled_never_stalls(self):
        acu = AccessControlUnit(EFLConfig.disabled(), MultiplyWithCarry(1))
        acu.record_eviction(10)
        assert acu.eviction_grant_time(11) == 11
        assert acu.stall_cycles == 0

    def test_time_going_backwards_rejected(self):
        acu = self.make()
        acu.record_eviction(100)
        with pytest.raises(SimulationError):
            acu.record_eviction(50)

    def test_eviction_counter(self):
        acu = self.make()
        times = [0, 600, 1300, 2500]
        for t in times:
            acu.record_eviction(max(t, acu.next_allowed_time()))
        assert acu.evictions == len(times)

    def test_reset(self):
        acu = self.make()
        acu.record_eviction(100)
        acu.reset()
        assert acu.eviction_allowed(0) is True
        assert acu.evictions == 0
        assert acu.stall_cycles == 0


class TestCRG:
    def make(self, mid=250, seed=2, num_sets=64, randomise=True):
        return CacheRequestGenerator(
            EFLConfig(mid=mid, randomise_mid=randomise),
            MultiplyWithCarry(seed),
            num_sets,
        )

    def test_requires_positive_mid(self):
        with pytest.raises(ConfigurationError):
            CacheRequestGenerator(
                EFLConfig.disabled(), MultiplyWithCarry(1), 64
            )

    def test_fires_in_time_order(self):
        crg = self.make()
        fired_sets = []
        count = crg.fire_until(10_000, fired_sets.append)
        assert count == len(fired_sets)
        assert count == crg.fired

    def test_rate_matches_mid(self):
        """~1 eviction per MID cycles on average."""
        crg = self.make(mid=250, seed=7)
        count = crg.fire_until(1_000_000, lambda s: None)
        assert abs(count - 4000) < 400

    def test_deterministic_gap_mode(self):
        crg = self.make(mid=100, randomise=False)
        count = crg.fire_until(1000, lambda s: None)
        assert count == 10

    def test_sets_uniform(self):
        crg = self.make(mid=10, num_sets=8, seed=3)
        counts = [0] * 8
        crg.fire_until(200_000, lambda s: counts.__setitem__(s, counts[s] + 1))
        total = sum(counts)
        for count in counts:
            assert abs(count - total / 8) < total / 8 * 0.2

    def test_idempotent_for_same_time(self):
        crg = self.make()
        first = crg.fire_until(5000, lambda s: None)
        assert crg.fire_until(5000, lambda s: None) == 0
        assert crg.fired == first

    def test_negative_time_rejected(self):
        crg = self.make()
        with pytest.raises(SimulationError):
            crg.fire_until(-1, lambda s: None)

    def test_reset(self):
        crg = self.make()
        crg.fire_until(10_000, lambda s: None)
        crg.reset()
        assert crg.fired == 0


class TestEFLController:
    def make(self, mode=OperationMode.DEPLOYMENT, mid=250, cores=4):
        llc = make_llc()
        configs = [EFLConfig(mid=mid)] * cores
        return EFLController(llc, configs, mode=mode, analysed_core=0, seed=9), llc

    def test_deployment_has_no_crgs(self):
        efl, llc = self.make(OperationMode.DEPLOYMENT)
        assert efl.inject_interference(100_000) == 0
        assert llc.stats.forced_evictions == 0

    def test_analysis_injects_interference(self):
        efl, llc = self.make(OperationMode.ANALYSIS)
        fired = efl.inject_interference(100_000)
        assert fired > 0
        assert llc.stats.forced_evictions == fired
        # 3 interfering cores, one eviction per ~MID cycles each.
        assert abs(fired - 3 * 100_000 / 250) < 3 * 100_000 / 250 * 0.25

    def test_analysed_core_has_no_crg(self):
        """Interference comes from num_cores - 1 CRGs only."""
        efl, _llc = self.make(OperationMode.ANALYSIS, cores=2)
        fired = efl.inject_interference(100_000)
        assert abs(fired - 100_000 / 250) < 100_000 / 250 * 0.3

    def test_grant_and_record(self):
        efl, _llc = self.make()
        grant = efl.grant_eviction(0, 50)
        assert grant == 50
        efl.record_eviction(0, grant)
        assert efl.acus[0].evictions == 1

    def test_per_core_independence(self):
        efl, _llc = self.make()
        efl.record_eviction(0, 100)
        # Core 1 is unaffected by core 0's cdc.
        assert efl.grant_eviction(1, 101) == 101

    def test_analysis_requires_positive_interfering_mid(self):
        llc = make_llc()
        configs = [EFLConfig(mid=250), EFLConfig.disabled()]
        with pytest.raises(ConfigurationError):
            EFLController(llc, configs, mode=OperationMode.ANALYSIS)

    def test_requires_some_core(self):
        with pytest.raises(ConfigurationError):
            EFLController(make_llc(), [], mode=OperationMode.DEPLOYMENT)

    def test_bad_analysed_core(self):
        llc = make_llc()
        with pytest.raises(ConfigurationError):
            EFLController(
                llc, [EFLConfig(mid=1)] * 2, mode=OperationMode.ANALYSIS,
                analysed_core=5,
            )

    def test_reset(self):
        efl, _llc = self.make(OperationMode.ANALYSIS)
        efl.inject_interference(10_000)
        efl.record_eviction(0, 5)
        efl.reset()
        assert efl.interference_evictions() == 0
        assert efl.acus[0].evictions == 0
