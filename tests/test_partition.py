"""Tests for the way-partitioned LLC (CP baseline)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.mem.cache import Cache, CacheGeometry
from repro.mem.partition import PartitionedLLC, WayPartition
from repro.mem.placement import RandomPlacement
from repro.mem.replacement import EvictOnMissRandom
from repro.utils.rng import MultiplyWithCarry


def make_llc(size=1024, ways=8, seed=3, rii=5):
    geometry = CacheGeometry(size_bytes=size, line_size=16, ways=ways)
    return Cache(
        geometry,
        RandomPlacement(geometry.num_sets, rii=rii),
        EvictOnMissRandom(MultiplyWithCarry(seed)),
        name="LLC",
    )


class TestWayPartition:
    def test_even_split(self):
        p = WayPartition.even(num_cores=4, total_ways=8)
        assert p.ways_for(0) == (0, 1)
        assert p.ways_for(3) == (6, 7)
        assert p.counts == {0: 2, 1: 2, 2: 2, 3: 2}

    def test_even_split_requires_divisibility(self):
        with pytest.raises(ConfigurationError):
            WayPartition.even(num_cores=3, total_ways=8)

    def test_from_counts(self):
        p = WayPartition.from_counts([4, 2, 1, 1], total_ways=8)
        assert p.ways_for(0) == (0, 1, 2, 3)
        assert p.ways_for(1) == (4, 5)
        assert p.ways_for(2) == (6,)
        assert p.ways_for(3) == (7,)

    def test_from_counts_may_leave_ways_unused(self):
        p = WayPartition.from_counts([1, 1, 1, 1], total_ways=8)
        used = {w for ways in p.ways_per_core.values() for w in ways}
        assert used == {0, 1, 2, 3}

    def test_from_counts_overflow_rejected(self):
        with pytest.raises(ConfigurationError):
            WayPartition.from_counts([4, 4, 4, 4], total_ways=8)

    def test_overlap_rejected(self):
        with pytest.raises(ConfigurationError):
            WayPartition({0: (0, 1), 1: (1, 2)})

    def test_empty_partition_rejected(self):
        with pytest.raises(ConfigurationError):
            WayPartition({0: ()})

    def test_unknown_core_rejected(self):
        p = WayPartition.even(4, 8)
        with pytest.raises(ConfigurationError):
            p.ways_for(9)


class TestPartitionedLLC:
    def test_partition_must_fit_cache(self):
        llc = make_llc(ways=4)
        with pytest.raises(ConfigurationError):
            PartitionedLLC(llc, WayPartition({0: (0, 5)}))

    def test_isolation_between_cores(self):
        """A core's accesses can never evict another core's lines."""
        llc = make_llc()
        part = PartitionedLLC(llc, WayPartition.even(4, 8))
        # Core 0 loads a working set (it may self-conflict under
        # random placement; what matters is what ends up resident).
        for line in range(100, 110):
            part.access(0, line)
        resident_before = {
            line for line in range(100, 110) if part.probe(0, line)
        }
        assert resident_before, "sanity: core 0 holds something"
        # Core 1 thrashes its own partition hard.
        for line in range(1000, 1400):
            part.access(1, line)
        for line in resident_before:
            assert part.probe(0, line) is True

    def test_partition_invisible_to_other_core(self):
        llc = make_llc()
        part = PartitionedLLC(llc, WayPartition.even(4, 8))
        part.access(0, 42)
        assert part.probe(0, 42) is True
        assert part.probe(1, 42) is False

    def test_partition_behaves_like_private_cache(self):
        """A w-way partition of the LLC == a private w-way cache with
        the same sets, given the same access stream and PRNG stream."""
        rii, seed = 7, 9
        llc = make_llc(size=1024, ways=8, seed=seed, rii=rii)
        part = PartitionedLLC(llc, WayPartition({0: (0, 1)}))
        private = Cache(
            CacheGeometry(size_bytes=256, line_size=16, ways=2),
            RandomPlacement(8, rii=rii),
            EvictOnMissRandom(MultiplyWithCarry(seed)),
        )
        assert llc.geometry.num_sets == private.geometry.num_sets
        stream = [i % 37 for i in range(300)]
        for line in stream:
            a = part.access(0, line)
            b = private.access(line)
            assert a.hit == b.hit

    def test_force_eviction_confined(self):
        llc = make_llc()
        part = PartitionedLLC(llc, WayPartition.even(4, 8))
        part.access(0, 1)
        set_index = llc.set_of(1)
        # Force evictions in core 1's partition never hit core 0's line.
        for _ in range(50):
            part.force_eviction(1, set_index)
        assert part.probe(0, 1) is True

    def test_flush_partition(self):
        llc = make_llc()
        part = PartitionedLLC(llc, WayPartition.even(4, 8))
        part.access(0, 1, write=True)
        part.access(1, 2, write=True)
        written = part.flush_partition(0)
        assert [e.line for e in written] == [1]
        assert part.probe(0, 1) is False
        assert part.probe(1, 2) is True


class TestRepartitionConservation:
    """Repartition + refill conserves occupancy and stats totals.

    ``flush_partition`` delegates to ``Cache.flush(ways=...)``, so a
    partial flush and a full flush must account identically: evictions
    count every valid line displaced, write-backs every dirty one.
    """

    def _fill_partition(self, llc, core, lines, write=False):
        for line in lines:
            llc.access(core, line, write=write)

    def test_flush_partition_counts_evictions_and_writebacks(self):
        cache = make_llc()
        llc = PartitionedLLC(cache, WayPartition.even(num_cores=4, total_ways=8))
        self._fill_partition(llc, 0, range(0, 10), write=True)
        self._fill_partition(llc, 1, range(100, 110))
        evictions_before = cache.stats.evictions
        writebacks_before = cache.stats.writebacks
        core0_lines = sum(
            1 for s in range(cache.geometry.num_sets)
            for w in (0, 1) if cache._tags[s][w] is not None
        )
        core0_dirty = sum(
            1 for s in range(cache.geometry.num_sets)
            for w in (0, 1) if cache._dirty[s][w]
        )
        written_back = llc.flush_partition(0)
        assert cache.stats.evictions == evictions_before + core0_lines
        assert cache.stats.writebacks == writebacks_before + core0_dirty
        assert len(written_back) == core0_dirty
        assert all(ev.dirty for ev in written_back)

    def test_flush_partition_spares_other_partitions(self):
        cache = make_llc()
        llc = PartitionedLLC(cache, WayPartition.even(num_cores=4, total_ways=8))
        self._fill_partition(llc, 0, range(0, 6))
        self._fill_partition(llc, 2, range(200, 206))
        core2_resident = {
            cache._tags[s][w]
            for s in range(cache.geometry.num_sets)
            for w in (4, 5) if cache._tags[s][w] is not None
        }
        llc.flush_partition(0)
        still_resident = {
            cache._tags[s][w]
            for s in range(cache.geometry.num_sets)
            for w in (4, 5) if cache._tags[s][w] is not None
        }
        assert still_resident == core2_resident

    def test_repartition_refill_conserves_totals(self):
        """Simulated partition reassignment: flush, repartition, refill."""
        cache = make_llc()
        llc = PartitionedLLC(cache, WayPartition.even(num_cores=4, total_ways=8))
        self._fill_partition(llc, 0, range(0, 12), write=True)
        self._fill_partition(llc, 1, range(100, 112), write=True)

        # Every line ever displaced must appear in stats.evictions:
        # start the audit from the current counters.
        evictions_before = cache.stats.evictions
        writebacks_before = cache.stats.writebacks
        occupancy_before = cache.occupancy()
        dirty_before = sum(
            1 for s in range(cache.geometry.num_sets)
            for w in range(cache.geometry.ways) if cache._dirty[s][w]
        )

        # Reassign: flush both partitions, install a new layout, refill.
        llc.flush_partition(0)
        llc.flush_partition(1)
        assert cache.occupancy() == 0
        assert cache.stats.evictions == evictions_before + occupancy_before
        assert cache.stats.writebacks == writebacks_before + dirty_before

        new_llc = PartitionedLLC(
            cache, WayPartition.from_counts([4, 4], total_ways=8)
        )
        self._fill_partition(new_llc, 0, range(0, 12), write=True)
        self._fill_partition(new_llc, 1, range(100, 112), write=True)

        # Refill conservation: hits+misses grew by the accesses issued,
        # and occupancy equals lines filled minus lines displaced since
        # the flush.
        evictions_at_flush = evictions_before + occupancy_before
        displaced_by_refill = cache.stats.evictions - evictions_at_flush
        assert cache.occupancy() == 24 - displaced_by_refill

    def test_flush_partition_matches_full_flush_accounting(self):
        """Per-way flushes over all cores == one full flush, stat-wise."""
        def build():
            cache = make_llc(seed=11)
            llc = PartitionedLLC(
                cache, WayPartition.even(num_cores=4, total_ways=8)
            )
            for core in range(4):
                for line in range(core * 50, core * 50 + 8):
                    llc.access(core, line, write=(line % 2 == 0))
            return cache, llc

        cache_a, llc_a = build()
        for core in range(4):
            llc_a.flush_partition(core)

        cache_b, _llc_b = build()
        cache_b.flush()

        assert cache_a.stats.evictions == cache_b.stats.evictions
        assert cache_a.stats.writebacks == cache_b.stats.writebacks
        assert cache_a.occupancy() == cache_b.occupancy() == 0
