"""Tests for the IMA-style frame schedule and cyclic executive."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.rtos.frames import FrameSchedule, MinorFrame
from repro.rtos.scheduler import CyclicExecutive, Task


class TestMinorFrame:
    def test_basic(self):
        frame = MinorFrame(index=0, budget_cycles=1000,
                           assignments={0: "a", 2: "b"})
        assert frame.tasks == ("a", "b")
        assert frame.core_of("b") == 2

    def test_missing_task(self):
        frame = MinorFrame(index=0, budget_cycles=1000, assignments={0: "a"})
        with pytest.raises(ConfigurationError):
            frame.core_of("zz")

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MinorFrame(index=-1, budget_cycles=10)
        with pytest.raises(ConfigurationError):
            MinorFrame(index=0, budget_cycles=0)
        with pytest.raises(ConfigurationError):
            MinorFrame(index=0, budget_cycles=10, assignments={-1: "a"})


class TestFrameSchedule:
    def make(self, assignments_list):
        frames = [
            MinorFrame(index=i, budget_cycles=100, assignments=a)
            for i, a in enumerate(assignments_list)
        ]
        return FrameSchedule(frames, rii_seed=3)

    def test_major_frame_cycles(self):
        schedule = self.make([{0: "a"}, {0: "b"}])
        assert schedule.major_frame_cycles == 200
        assert len(schedule) == 2

    def test_needs_consecutive_indices(self):
        frames = [MinorFrame(index=1, budget_cycles=10, assignments={})]
        with pytest.raises(ConfigurationError):
            FrameSchedule(frames)

    def test_needs_frames(self):
        with pytest.raises(ConfigurationError):
            FrameSchedule([])

    def test_rii_stream(self):
        schedule = self.make([{0: "a"}])
        first = schedule.next_llc_rii()
        second = schedule.next_llc_rii()
        assert first != second
        assert schedule.rii_updates == 2
        assert 0 <= first <= 0xFFFFFFFF

    def test_rii_reproducible(self):
        a = self.make([{0: "x"}])
        b = self.make([{0: "x"}])
        assert a.next_llc_rii() == b.next_llc_rii()

    def test_concurrent_pairs(self):
        schedule = self.make([{0: "a", 1: "b"}, {0: "a", 1: "c"}])
        pairs = schedule.concurrent_pairs()
        assert ("a", "b") in pairs
        assert ("a", "c") in pairs
        assert ("b", "c") not in pairs

    def test_core_history(self):
        schedule = self.make([{0: "a"}, {2: "a"}, {1: "b"}])
        assert schedule.core_history("a") == [0, 2]


class TestCyclicExecutive:
    def tasks(self, n, colour=None, releases=1):
        return [
            Task(name=f"t{i}", wcet_cycles=100, releases=releases,
                 colour_group=colour)
            for i in range(n)
        ]

    def test_efl_packs_densely(self):
        """With no co-scheduling constraints, 4 tasks share one frame."""
        executive = CyclicExecutive(num_cores=4, frame_budget_cycles=1000)
        result = executive.schedule(self.tasks(4), mechanism="efl")
        assert result.frames_used == 1
        assert result.partition_flushes == 0
        assert result.co_schedule_conflicts_avoided == 0

    def test_software_partitioning_serialises_colour_groups(self):
        """Tasks coloured into the same sets cannot co-run (§2.2), so a
        colour-conflicting set needs one frame per task."""
        executive = CyclicExecutive(num_cores=4, frame_budget_cycles=1000)
        result = executive.schedule(
            self.tasks(4, colour="shared"), mechanism="cp-sw"
        )
        assert result.frames_used == 4
        assert result.co_schedule_conflicts_avoided > 0

    def test_software_partitioning_without_conflicts_matches_efl(self):
        executive = CyclicExecutive(num_cores=4, frame_budget_cycles=1000)
        result = executive.schedule(self.tasks(4), mechanism="cp-sw")
        assert result.frames_used == 1

    def test_hardware_partitioning_charges_flushes(self):
        """5 tasks rotating over 4 cores: partitions get reused by
        different tasks, each reuse costing a flush (§2.2)."""
        executive = CyclicExecutive(num_cores=4, frame_budget_cycles=1000)
        result = executive.schedule(
            self.tasks(5, releases=3), mechanism="cp-hw"
        )
        assert result.partition_flushes > 0

    def test_hardware_partitioning_stable_placement_no_flushes(self):
        """4 tasks re-running on the same cores never flush."""
        executive = CyclicExecutive(num_cores=4, frame_budget_cycles=1000)
        result = executive.schedule(
            self.tasks(4, releases=3), mechanism="cp-hw"
        )
        assert result.partition_flushes == 0

    def test_efl_never_counts_flushes(self):
        executive = CyclicExecutive(num_cores=4, frame_budget_cycles=1000)
        result = executive.schedule(self.tasks(5, releases=3), mechanism="efl")
        assert result.partition_flushes == 0

    def test_all_releases_scheduled(self):
        executive = CyclicExecutive(num_cores=2, frame_budget_cycles=1000)
        result = executive.schedule(self.tasks(3, releases=2), mechanism="efl")
        placed = [
            name
            for frame in result.schedule.frames
            for name in frame.assignments.values()
        ]
        assert sorted(placed) == sorted(["t0", "t1", "t2"] * 2)

    def test_rejects_oversized_task(self):
        executive = CyclicExecutive(num_cores=4, frame_budget_cycles=50)
        with pytest.raises(ConfigurationError):
            executive.schedule([Task("big", wcet_cycles=100)])

    def test_rejects_duplicate_names(self):
        executive = CyclicExecutive()
        with pytest.raises(ConfigurationError):
            executive.schedule([Task("a", 1), Task("a", 1)])

    def test_rejects_unknown_mechanism(self):
        executive = CyclicExecutive()
        with pytest.raises(ConfigurationError):
            executive.schedule([Task("a", 1)], mechanism="tdma")

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            CyclicExecutive().schedule([])

    def test_same_task_releases_never_corun_under_sw(self):
        """Two releases of one task share its colouring by definition."""
        executive = CyclicExecutive(num_cores=4, frame_budget_cycles=1000)
        result = executive.schedule(
            [Task("solo", 100, releases=3)], mechanism="cp-sw"
        )
        assert result.frames_used == 3
