"""Tests for argument-validation helpers and stats utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import AnalysisError, ConfigurationError
from repro.utils.stats_utils import (
    as_sample,
    ccdf,
    coefficient_of_variation,
    ecdf,
    empirical_quantile,
)
from repro.utils.validation import (
    require_non_negative_int,
    require_positive_int,
    require_power_of_two,
    require_probability,
)


class TestValidation:
    def test_positive_int_accepts(self):
        assert require_positive_int("x", 3) == 3

    @pytest.mark.parametrize("bad", [0, -1, 1.5, "3", True, None])
    def test_positive_int_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            require_positive_int("x", bad)

    def test_non_negative_accepts_zero(self):
        assert require_non_negative_int("x", 0) == 0

    @pytest.mark.parametrize("bad", [-1, 0.0, True])
    def test_non_negative_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            require_non_negative_int("x", bad)

    @pytest.mark.parametrize("good", [1, 2, 4, 1024])
    def test_power_of_two_accepts(self, good):
        assert require_power_of_two("x", good) == good

    @pytest.mark.parametrize("bad", [0, 3, 6, 1000, -8])
    def test_power_of_two_rejects(self, bad):
        with pytest.raises(ConfigurationError):
            require_power_of_two("x", bad)

    def test_probability_bounds(self):
        assert require_probability("p", 0.0) == 0.0
        assert require_probability("p", 1.0) == 1.0
        with pytest.raises(ConfigurationError):
            require_probability("p", 1.1)
        with pytest.raises(ConfigurationError):
            require_probability("p", -0.1)


class TestStatsUtils:
    def test_as_sample_rejects_empty(self):
        with pytest.raises(AnalysisError):
            as_sample([])

    def test_as_sample_rejects_nan(self):
        with pytest.raises(AnalysisError):
            as_sample([1.0, float("nan")])

    def test_as_sample_rejects_inf(self):
        with pytest.raises(AnalysisError):
            as_sample([1.0, float("inf")])

    def test_ecdf_monotone(self):
        xs, ps = ecdf([3, 1, 2, 5, 4])
        assert list(xs) == [1, 2, 3, 4, 5]
        assert list(ps) == pytest.approx([0.2, 0.4, 0.6, 0.8, 1.0])

    def test_ccdf_complements_ecdf(self):
        xs, ps = ccdf([1, 2, 3, 4])
        _, cdf_ps = ecdf([1, 2, 3, 4])
        assert np.allclose(ps, 1.0 - cdf_ps)

    def test_quantile_endpoints(self):
        sample = [10, 20, 30]
        assert empirical_quantile(sample, 0.0) == 10
        assert empirical_quantile(sample, 1.0) == 30

    def test_quantile_rejects_out_of_range(self):
        with pytest.raises(AnalysisError):
            empirical_quantile([1, 2], 1.5)

    def test_cv_of_constant_is_zero(self):
        assert coefficient_of_variation([5, 5, 5]) == 0.0

    def test_cv_scale_invariant(self):
        a = coefficient_of_variation([1, 2, 3])
        b = coefficient_of_variation([10, 20, 30])
        assert a == pytest.approx(b)

    def test_cv_rejects_zero_mean(self):
        with pytest.raises(AnalysisError):
            coefficient_of_variation([-1.0, 1.0])
