"""Tests for Execution Time Profiles."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AnalysisError
from repro.pta.etp import ExecutionTimeProfile as ETP


class TestConstruction:
    def test_deterministic(self):
        etp = ETP.deterministic(5)
        assert etp.latencies == (5,)
        assert etp.mean() == 5.0
        assert etp.variance() == 0.0

    def test_hit_miss(self):
        etp = ETP.hit_miss(1, 101, 0.1)
        assert etp.probability_of(1) == pytest.approx(0.9)
        assert etp.probability_of(101) == pytest.approx(0.1)
        assert etp.mean() == pytest.approx(11.0)

    def test_hit_miss_degenerate(self):
        assert ETP.hit_miss(1, 100, 0.0) == ETP.deterministic(1)
        assert ETP.hit_miss(1, 100, 1.0) == ETP.deterministic(100)

    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(AnalysisError):
            ETP({1: 0.5, 2: 0.4})

    def test_rejects_negative_latency(self):
        with pytest.raises(AnalysisError):
            ETP({-1: 1.0})

    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            ETP({})

    def test_merges_duplicate_latencies(self):
        etp = ETP.mixture([(0.5, ETP.deterministic(3)), (0.5, ETP.deterministic(3))])
        assert etp.latencies == (3,)
        assert etp.probability_of(3) == pytest.approx(1.0)


class TestQueries:
    def test_exceedance(self):
        etp = ETP({1: 0.7, 10: 0.2, 100: 0.1})
        assert etp.exceedance(0) == pytest.approx(1.0)
        assert etp.exceedance(1) == pytest.approx(0.3)
        assert etp.exceedance(10) == pytest.approx(0.1)
        assert etp.exceedance(100) == pytest.approx(0.0)

    def test_quantile(self):
        etp = ETP({1: 0.7, 10: 0.2, 100: 0.1})
        assert etp.quantile(0.5) == 1
        assert etp.quantile(0.8) == 10
        assert etp.quantile(0.95) == 100
        assert etp.quantile(1.0) == 100

    def test_quantile_bounds(self):
        with pytest.raises(AnalysisError):
            ETP.deterministic(1).quantile(1.5)


class TestComposition:
    def test_convolution_of_deterministics(self):
        total = ETP.deterministic(3) + ETP.deterministic(4)
        assert total == ETP.deterministic(7)

    def test_convolution_mean_adds(self):
        a = ETP.hit_miss(1, 100, 0.25)
        b = ETP.hit_miss(2, 50, 0.5)
        assert (a + b).mean() == pytest.approx(a.mean() + b.mean())

    def test_convolution_variance_adds(self):
        a = ETP.hit_miss(1, 100, 0.25)
        b = ETP.hit_miss(2, 50, 0.5)
        assert (a + b).variance() == pytest.approx(a.variance() + b.variance())

    def test_sequence(self):
        seq = ETP.sequence([ETP.deterministic(1)] * 10)
        assert seq == ETP.deterministic(10)

    def test_sequence_rejects_empty(self):
        with pytest.raises(AnalysisError):
            ETP.sequence([])

    def test_mixture(self):
        etp = ETP.mixture(
            [(0.5, ETP.deterministic(1)), (0.5, ETP.deterministic(3))]
        )
        assert etp.mean() == pytest.approx(2.0)

    def test_mixture_weights_must_sum(self):
        with pytest.raises(AnalysisError):
            ETP.mixture([(0.5, ETP.deterministic(1))])

    def test_two_coin_flips(self):
        """Convolving two hit/miss ETPs enumerates all four outcomes."""
        access = ETP.hit_miss(1, 11, 0.5)
        two = access + access
        assert two.probability_of(2) == pytest.approx(0.25)
        assert two.probability_of(12) == pytest.approx(0.5)
        assert two.probability_of(22) == pytest.approx(0.25)

    @given(
        latencies=st.lists(
            st.integers(min_value=0, max_value=50), min_size=1, max_size=5, unique=True
        ),
        seed=st.integers(min_value=1, max_value=1000),
    )
    @settings(max_examples=50)
    def test_probabilities_always_sum_to_one(self, latencies, seed):
        import random

        rng = random.Random(seed)
        weights = [rng.random() + 0.01 for _ in latencies]
        total = sum(weights)
        etp = ETP({lat: w / total for lat, w in zip(latencies, weights)})
        assert sum(etp.probabilities) == pytest.approx(1.0)
        convolved = etp + etp
        assert sum(convolved.probabilities) == pytest.approx(1.0)
