"""Cross-module integration tests: the properties the paper's argument
rests on, checked end-to-end on small platforms.
"""

from __future__ import annotations

import pytest

from repro.core.config import OperationMode
from repro.pta.mbpta import estimate_pwcet
from repro.sim.campaign import collect_execution_times
from repro.sim.config import Scenario
from repro.sim.simulator import run_isolation, run_workload
from repro.workloads.generator import build_workload_traces
from repro.workloads.scale import ExperimentScale
from repro.workloads.suite import build_benchmark

SCALE = ExperimentScale.tiny()
CONFIG = SCALE.system_config()
TRACE_SCALE = SCALE.trace_scale


@pytest.fixture(scope="module")
def cn_analysis_estimate():
    """pWCET of CN under EFL500 at tiny scale (shared by tests)."""
    trace = build_benchmark("CN", scale=TRACE_SCALE)
    sample = collect_execution_times(
        trace, CONFIG, Scenario.efl(500), runs=SCALE.analysis_runs,
        master_seed=99,
    )
    return trace, estimate_pwcet(
        sample.execution_times, task="CN", scenario_label="EFL500",
        block_size=SCALE.block_size, check_iid=False,
    )


class TestTimeComposability:
    """Analysis-time observations must upper-bound deployment."""

    def test_deployment_under_pwcet(self, cn_analysis_estimate):
        """Co-running with arbitrary EFL500-throttled co-runners never
        exceeds the isolation-analysis pWCET (probabilistically; at
        1e-15 an excursion in 20 runs would be a soundness bug)."""
        trace, estimate = cn_analysis_estimate
        co_runners = build_workload_traces(("MA", "PN", "A2"), TRACE_SCALE)
        bound = estimate.pwcet_at(1e-15)
        for seed in range(20):
            result = run_workload(
                [trace] + co_runners, CONFIG,
                Scenario.efl(500, mode=OperationMode.DEPLOYMENT), seed=seed,
            )
            assert result.core(0).cycles <= bound, (
                f"seed {seed}: deployment {result.core(0).cycles} exceeds "
                f"pWCET {bound:.0f}"
            )

    def test_deployment_mean_below_analysis_mean(self, cn_analysis_estimate):
        """Even the analysis-run *mean* dominates typical deployment:
        CRGs evict at the maximum rate real co-runners are allowed."""
        trace, estimate = cn_analysis_estimate
        co_runners = build_workload_traces(("RS", "PU", "CA"), TRACE_SCALE)
        deployment = [
            run_workload(
                [trace] + co_runners, CONFIG,
                Scenario.efl(500, mode=OperationMode.DEPLOYMENT), seed=seed,
            ).core(0).cycles
            for seed in range(5)
        ]
        assert sum(deployment) / len(deployment) <= estimate.mean_time * 1.05

    def test_cp_partition_isolates_timing(self):
        """Under CP, a task's co-run time matches its isolation time up
        to bus/memory contention — the LLC partition fully isolates."""
        trace = build_benchmark("CN", scale=TRACE_SCALE)
        scenario = Scenario.cache_partitioning(
            (2, 2, 2, 2), mode=OperationMode.DEPLOYMENT
        )
        co_runners = build_workload_traces(("MA", "MA", "MA"), TRACE_SCALE)
        together = run_workload([trace] + co_runners, CONFIG, scenario, seed=4)
        alone = run_workload([trace], CONFIG, scenario, seed=4)
        ratio = together.core(0).cycles / alone.core(0).cycles
        # The LLC partition is untouched by the MA hogs; what remains
        # is bus (<= (N-1)*2 per transfer) and memory-channel
        # (<= (N-1)*100 per read) interference, which caps the
        # slowdown of a miss at (112 + 306) / 112 ~ 3.7x.
        assert ratio < 3.8
        # And the miss *counts* must be identical: partition isolation.
        assert together.core(0).dl1_misses == alone.core(0).dl1_misses


class TestEvictionFrequencyContract:
    """EFL's core mechanism: eviction counts are rate-limited."""

    @pytest.mark.parametrize("mid", [250, 1000])
    def test_deployment_evictions_bounded_by_mid(self, mid):
        trace = build_benchmark("MA", scale=TRACE_SCALE)  # miss-heavy
        result = run_isolation(
            trace, CONFIG, Scenario.efl(mid, mode=OperationMode.DEPLOYMENT),
            seed=1,
        )
        core = result.cores[0]
        # At most one eviction per MID cycles on average (randomised
        # MID allows short-term bursts, so allow slack).
        assert core.efl_evictions <= core.cycles / mid * 1.35

    def test_smaller_mid_means_less_throttling(self):
        trace = build_benchmark("MA", scale=TRACE_SCALE)
        fast = run_isolation(
            trace, CONFIG, Scenario.efl(250, mode=OperationMode.DEPLOYMENT),
            seed=1,
        )
        slow = run_isolation(
            trace, CONFIG, Scenario.efl(2000, mode=OperationMode.DEPLOYMENT),
            seed=1,
        )
        assert fast.cores[0].cycles < slow.cores[0].cycles


class TestSharedVsPartitionedCapacity:
    def test_full_llc_reduces_misses(self):
        """A working set that churns a 2-way partition misses far less
        in the full 8-way shared LLC (capacity AND associativity) —
        the raw benefit EFL's throttling buys access to."""
        trace = build_benchmark("II", scale=TRACE_SCALE)
        shared = run_isolation(trace, CONFIG, Scenario.uncontrolled(), seed=2)
        cp2 = run_isolation(
            trace, CONFIG,
            Scenario.cache_partitioning(2, mode=OperationMode.DEPLOYMENT),
            seed=2,
        )
        assert shared.llc_misses < cp2.llc_misses
        assert shared.cores[0].cycles < cp2.cores[0].cycles

    def test_efl_keeps_the_miss_benefit(self):
        """EFL throttles *when* evictions happen, not *what* fits: its
        miss count tracks the uncontrolled shared LLC, not CP2's."""
        trace = build_benchmark("II", scale=TRACE_SCALE)
        efl = run_isolation(
            trace, CONFIG, Scenario.efl(250, mode=OperationMode.DEPLOYMENT),
            seed=2,
        )
        cp2 = run_isolation(
            trace, CONFIG,
            Scenario.cache_partitioning(2, mode=OperationMode.DEPLOYMENT),
            seed=2,
        )
        assert efl.llc_misses < cp2.llc_misses


class TestReproducibility:
    def test_full_pipeline_deterministic(self):
        trace = build_benchmark("ID", scale=TRACE_SCALE)
        a = collect_execution_times(trace, CONFIG, Scenario.efl(500), runs=10,
                                    master_seed=5)
        b = collect_execution_times(trace, CONFIG, Scenario.efl(500), runs=10,
                                    master_seed=5)
        assert a.execution_times == b.execution_times

    def test_seed_isolation_between_runs(self):
        trace = build_benchmark("ID", scale=TRACE_SCALE)
        sample = collect_execution_times(trace, CONFIG, Scenario.efl(500),
                                         runs=12, master_seed=5)
        # Time-randomisation must actually randomise across runs.
        assert len(set(sample.execution_times)) > 1
