"""Grouped-opcode kernel engine: bit-identity, compilation, selection.

The kernel engine is the batch engine's compiled form — a
``TraceProgram`` lowered to fused max-plus chains plus irreducible
cache-access ops (:mod:`repro.sim.kernels`).  Like the batch engine
before it, it is only allowed to exist because it is bit-identical to
the scalar interpreter: same execution times, same per-run counters,
same checksums, same seeds, across every analysis scenario class the
paper uses.  These tests assert that contract, the compile pass's
accounting (every instruction lands in exactly one group class), the
plan-cache integration (kernel plans cached alongside their programs,
one program lookup per campaign), the engine-selection policy
(``auto`` prefers the kernel; ``--engine kernel`` is strict), and the
cross-engine checkpoint-resume matrix including the kernel
(satellite: scalar ↔ batch ↔ sharded ↔ kernel journals are
interchangeable because the sample is engine-invariant).
"""

from __future__ import annotations

import pytest

from tests.conftest import make_stream_trace
from tests.test_batch import SCENARIO_CLASSES, record_key

from repro.core.config import OperationMode
from repro.errors import ConfigurationError
from repro.observability import Telemetry
from repro.sim.backend import RunObserver, SerialBackend
from repro.sim.batch import BatchBackend, ShardedBatchBackend
from repro.sim.campaign import collect_execution_times
from repro.sim.checkpoint import CampaignCheckpoint, campaign_fingerprint
from repro.sim.config import Scenario, SystemConfig
from repro.sim.kernels import (
    ChainOp,
    FetchOp,
    KernelTemplatePlan,
    MemOp,
    compile_kernel_plan,
    numba_available,
)
from repro.sim.plancache import PlanCache
from repro.sim.simulator import RunRequest
from repro.utils.rng import derive_seeds

CONFIG = SystemConfig(l1_size=256, llc_size=2048)


@pytest.fixture(scope="module")
def trace():
    return make_stream_trace("kerneleq", words=48, sweeps=3, store_every=2)


# ----------------------------------------------------------------------
# bit-identity against the scalar oracle
# ----------------------------------------------------------------------
class TestBitIdentity:
    @pytest.mark.parametrize("config, scenario", SCENARIO_CLASSES)
    def test_campaign_matches_scalar(self, trace, config, scenario):
        scalar = collect_execution_times(
            trace, config, scenario, runs=14, master_seed=9, engine="scalar"
        )
        kernel = collect_execution_times(
            trace, config, scenario, runs=14, master_seed=9, engine="kernel"
        )
        assert kernel.execution_times == scalar.execution_times
        assert kernel.seeds == scalar.seeds
        assert kernel.instructions == scalar.instructions
        assert [record_key(r) for r in kernel.records] == \
            [record_key(r) for r in scalar.records]
        assert kernel.backend == "kernel"
        assert scalar.backend == "serial"

    @pytest.mark.parametrize("config, scenario", SCENARIO_CLASSES)
    def test_outcome_checksums_match_scalar(self, trace, config, scenario):
        seeds = derive_seeds(21, 6)
        template = RunRequest.isolation(trace, config, scenario, seeds[0])
        requests = [template.with_run(i, seed) for i, seed in enumerate(seeds)]
        scalar = SerialBackend().execute(requests)
        kernel = BatchBackend(strict=True, kernel=True).execute(requests)
        assert [o.checksum for o in kernel] == [o.checksum for o in scalar]
        assert [o.result for o in kernel] == [o.result for o in scalar]
        assert all(o.wall_time_s > 0 for o in kernel)

    def test_kernel_matches_batch_engine_exactly(self, trace):
        batch = collect_execution_times(
            trace, CONFIG, Scenario.efl(250), runs=12, master_seed=5,
            engine="batch",
        )
        kernel = collect_execution_times(
            trace, CONFIG, Scenario.efl(250), runs=12, master_seed=5,
            engine="kernel",
        )
        assert kernel.execution_times == batch.execution_times
        assert kernel.seeds == batch.seeds
        assert [record_key(r) for r in kernel.records] == \
            [record_key(r) for r in batch.records]

    def test_chunked_lanes_match_unchunked(self, trace):
        seeds = derive_seeds(3, 13)
        template = RunRequest.isolation(
            trace, CONFIG, Scenario.efl(250), seeds[0]
        )
        requests = [template.with_run(i, seed) for i, seed in enumerate(seeds)]
        whole = BatchBackend(strict=True, kernel=True).execute(requests)
        chunked = BatchBackend(
            strict=True, kernel=True, max_lanes=4
        ).execute(requests)
        assert [o.checksum for o in chunked] == [o.checksum for o in whole]

    def test_sharded_kernel_matches_scalar(self, trace):
        scalar = collect_execution_times(
            trace, CONFIG, Scenario.efl(250), runs=10, master_seed=7,
            engine="scalar",
        )
        sharded = collect_execution_times(
            trace, CONFIG, Scenario.efl(250), runs=10, master_seed=7,
            backend=ShardedBatchBackend(
                workers=2, force_pool=True, strict=True, kernel=True
            ),
        )
        assert sharded.execution_times == scalar.execution_times
        assert sharded.seeds == scalar.seeds

    def test_store_free_trace(self):
        loads_only = make_stream_trace("kloads", words=32, sweeps=2)
        scalar = collect_execution_times(
            loads_only, CONFIG, Scenario.efl(100), runs=8, master_seed=2,
            engine="scalar",
        )
        kernel = collect_execution_times(
            loads_only, CONFIG, Scenario.efl(100), runs=8, master_seed=2,
            engine="kernel",
        )
        assert kernel.execution_times == scalar.execution_times

    def test_numba_probe_degrades_silently(self):
        # This container has no numba: the probe must report that and
        # the engine must still have produced bit-identical samples
        # above through the pure NumPy path.
        assert numba_available() in (True, False)


# ----------------------------------------------------------------------
# the compile pass
# ----------------------------------------------------------------------
class TestCompile:
    def test_every_instruction_lands_in_one_group(self, trace):
        cache = PlanCache()
        program = cache.program(trace, CONFIG)
        plan = compile_kernel_plan(program, CONFIG)
        stats = plan.stats
        grouped = (
            stats["fetch_streak"] + stats["ifetch"]
        )
        assert grouped == program.instructions
        # The execute/memory phase of every instruction is likewise
        # classified exactly once.
        assert (stats["alu"] + stats["data_fast"] + stats["dmem"]) \
            == program.instructions
        assert plan.instructions == program.instructions

    def test_chains_fuse_deterministic_phases(self, trace):
        cache = PlanCache()
        program = cache.program(trace, CONFIG)
        plan = compile_kernel_plan(program, CONFIG)
        kinds = {type(op) for op in plan.ops}
        assert kinds <= {ChainOp, FetchOp, MemOp}
        chains = [op for op in plan.ops if isinstance(op, ChainOp)]
        assert len(chains) == plan.stats["chains"]
        assert plan.stats["chains"] >= 1
        # Fusion is the point: strictly fewer ops than the interpreter's
        # two phases (fetch + execute/memory) per instruction.
        assert len(plan.ops) < 2 * program.instructions
        assert plan.stats["fused_phases"] == sum(c.fused for c in chains)
        assert plan.stats["fused_phases"] > 0

    def test_first_fetch_is_irreducible(self, trace):
        # Instruction 0 can never be a fetch-fast hit (no prior line),
        # so compilation always opens with a real IL1 access.
        cache = PlanCache()
        program = cache.program(trace, CONFIG)
        plan = compile_kernel_plan(program, CONFIG)
        assert isinstance(plan.ops[0], FetchOp)

    def test_group_class_counters_on_metrics_registry(self, trace):
        telemetry = Telemetry()
        result = collect_execution_times(
            trace, CONFIG, Scenario.efl(250), runs=4, master_seed=3,
            engine="kernel", plan_cache=PlanCache(), telemetry=telemetry,
        )
        metrics = telemetry.metrics
        fetch_groups = (
            metrics.value("kernel_steps_fetch_streak")
            + metrics.value("kernel_steps_ifetch")
        )
        mem_groups = (
            metrics.value("kernel_steps_alu")
            + metrics.value("kernel_steps_data_fast")
            + metrics.value("kernel_steps_dmem")
        )
        assert fetch_groups == result.instructions
        assert mem_groups == result.instructions
        assert metrics.value("kernel_chains") >= 1
        assert metrics.value("kernel_plan_misses") == 1


# ----------------------------------------------------------------------
# plan cache integration
# ----------------------------------------------------------------------
class TestKernelPlanCache:
    def test_kernel_plan_cached_alongside_program(self, trace):
        cache = PlanCache()
        request = RunRequest.isolation(trace, CONFIG, Scenario.efl(250), 1)
        first = KernelTemplatePlan.for_request(request, cache)
        again = KernelTemplatePlan.for_request(request, cache)
        assert again.kernel is first.kernel
        assert again.program is first.program
        assert (cache.kernel_hits, cache.kernel_misses) == (1, 1)
        # One program lookup per request — the same accounting a batch
        # campaign would produce, so compile-once assertions hold
        # regardless of which engine ran the sweep.
        assert cache.snapshot() == (1, 1)

    def test_kernel_campaigns_share_compiled_plans(self, trace):
        cache = PlanCache()
        for master_seed, mid in ((1, 250), (2, 500)):
            collect_execution_times(
                trace, CONFIG, Scenario.efl(mid), runs=4,
                master_seed=master_seed, engine="kernel", plan_cache=cache,
            )
        # The trace compiled once (program and kernel plan); the second
        # campaign — different scenario, same (trace, config) — hit both.
        assert cache.snapshot() == (1, 1)
        assert (cache.kernel_hits, cache.kernel_misses) == (1, 1)


# ----------------------------------------------------------------------
# engine selection
# ----------------------------------------------------------------------
class TestEngineSelection:
    def test_explicit_kernel_engine(self, trace):
        result = collect_execution_times(
            trace, CONFIG, Scenario.efl(250), runs=5, master_seed=1,
            engine="kernel",
        )
        assert result.backend == "kernel"

    def test_auto_prefers_kernel(self, trace):
        result = collect_execution_times(
            trace, CONFIG, Scenario.efl(250), runs=5, master_seed=1,
        )
        assert result.backend == "kernel"

    def test_strict_kernel_rejects_deployment_mode(self, trace):
        with pytest.raises(ConfigurationError, match="analysis-mode"):
            collect_execution_times(
                trace, CONFIG,
                Scenario.efl(250, mode=OperationMode.DEPLOYMENT),
                runs=4, master_seed=1, engine="kernel",
            )

    def test_kernel_with_workers_is_sharded_kernel(self, trace):
        scalar = collect_execution_times(
            trace, CONFIG, Scenario.efl(250), runs=6, master_seed=4,
            engine="scalar",
        )
        result = collect_execution_times(
            trace, CONFIG, Scenario.efl(250), runs=6, master_seed=4,
            engine="kernel", workers=2,
        )
        assert result.execution_times == scalar.execution_times


# ----------------------------------------------------------------------
# cross-engine checkpoint resume (satellite: kernel joins the matrix)
# ----------------------------------------------------------------------
class KillAfter(RunObserver):
    def __init__(self, limit):
        self.limit = limit
        self.seen = 0

    def on_run(self, record):
        self.seen += 1
        if self.seen >= self.limit:
            raise KeyboardInterrupt


#: (first engine, resuming engine) pairs: the kernel must be able to
#: adopt any engine's journal and vice versa, because all engines
#: derive the identical sample.
RESUME_PAIRS = [
    pytest.param("scalar", "kernel", id="scalar-to-kernel"),
    pytest.param("kernel", "scalar", id="kernel-to-scalar"),
    pytest.param("batch", "kernel", id="batch-to-kernel"),
    pytest.param("kernel", "batch", id="kernel-to-batch"),
    pytest.param("kernel", "sharded", id="kernel-to-sharded"),
]


class TestResumeAcrossEngines:
    def _engine_kwargs(self, engine):
        if engine == "sharded":
            return {
                "backend": ShardedBatchBackend(
                    workers=2, force_pool=True, strict=True, kernel=True
                ),
            }
        return {"engine": engine}

    @pytest.mark.parametrize("first, second", RESUME_PAIRS)
    def test_journals_interchangeable(self, trace, tmp_path, first, second):
        journal = tmp_path / "campaign.jsonl"
        scenario = Scenario.efl(250)
        reference = collect_execution_times(
            trace, CONFIG, scenario, runs=12, master_seed=4, engine="scalar"
        )
        with pytest.raises(KeyboardInterrupt):
            collect_execution_times(
                trace, CONFIG, scenario, runs=12, master_seed=4,
                observer=KillAfter(5),
                checkpoint=CampaignCheckpoint(journal, resume=True),
                **self._engine_kwargs(first),
            )
        survived = len(journal.read_text().splitlines()) - 1
        assert survived >= 5
        resumed = collect_execution_times(
            trace, CONFIG, scenario, runs=12, master_seed=4,
            checkpoint=CampaignCheckpoint(journal, resume=True),
            **self._engine_kwargs(second),
        )
        assert resumed.resumed_runs == survived
        assert resumed.execution_times == reference.execution_times
        assert resumed.seeds == reference.seeds

    def test_fingerprint_is_engine_invariant(self, trace):
        # The campaign fingerprint digests (trace, config, scenario,
        # seed, runs) — never the engine — so journals and store
        # entries written under one engine address the same campaign
        # under any other.
        fingerprint = campaign_fingerprint(
            trace, CONFIG, Scenario.efl(250), 4, 12
        )
        assert fingerprint == campaign_fingerprint(
            trace, CONFIG, Scenario.efl(250), 4, 12
        )
        results = {
            engine: collect_execution_times(
                trace, CONFIG, Scenario.efl(250), runs=6, master_seed=4,
                engine=engine,
            )
            for engine in ("scalar", "batch", "kernel")
        }
        times = {tuple(r.execution_times) for r in results.values()}
        assert len(times) == 1
