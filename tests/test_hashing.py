"""Tests for the parametric placement hash."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.utils.hashing import ParametricHash


class TestParametricHash:
    def test_deterministic(self):
        h = ParametricHash(64)
        assert h.set_index(0x1234, 7) == h.set_index(0x1234, 7)

    def test_in_range(self):
        h = ParametricHash(64)
        for addr in range(0, 4096, 13):
            for rii in (0, 1, 99, 2**31):
                assert 0 <= h.set_index(addr, rii) < 64

    def test_rii_changes_mapping_for_most_addresses(self):
        h = ParametricHash(64)
        addresses = range(0, 2048, 16)
        moved = sum(
            1 for a in addresses if h.set_index(a, 1) != h.set_index(a, 2)
        )
        total = len(list(addresses))
        # P(same set) = 1/64 per address; nearly all should move.
        assert moved / total > 0.9

    def test_uniform_over_sets_for_fixed_address(self):
        """For a fixed address over many RIIs, every set is ~equally likely.

        This is the contract Equation 1's placement term relies on.
        """
        num_sets = 16
        h = ParametricHash(num_sets)
        counts = [0] * num_sets
        draws = 8000
        for rii in range(draws):
            counts[h.set_index(0xABCD, rii)] += 1
        expected = draws / num_sets
        for count in counts:
            assert abs(count - expected) < expected * 0.2

    def test_uniform_over_sets_for_fixed_rii(self):
        """For a fixed RII over many addresses, sets are balanced."""
        num_sets = 16
        h = ParametricHash(num_sets)
        counts = [0] * num_sets
        draws = 8000
        for i in range(draws):
            counts[h.set_index(0x1000 + i, rii=12345)] += 1
        expected = draws / num_sets
        for count in counts:
            assert abs(count - expected) < expected * 0.2

    def test_non_power_of_two_sets(self):
        h = ParametricHash(10)
        values = {h.set_index(a, 3) for a in range(1000)}
        assert values == set(range(10))

    def test_single_set(self):
        h = ParametricHash(1)
        assert h.set_index(123, 456) == 0

    def test_rejects_non_positive_sets(self):
        with pytest.raises(ConfigurationError):
            ParametricHash(0)
        with pytest.raises(ConfigurationError):
            ParametricHash(-4)

    @given(
        addr=st.integers(min_value=0, max_value=2**48),
        rii=st.integers(min_value=0, max_value=2**32),
        sets=st.sampled_from([1, 2, 8, 64, 512, 1000]),
    )
    @settings(max_examples=200)
    def test_always_in_range(self, addr, rii, sets):
        assert 0 <= ParametricHash(sets).set_index(addr, rii) < sets
