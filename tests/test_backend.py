"""Tests for the execution-backend layer: equivalence, failure capture.

The trust-critical property is backend transparency: a campaign's
execution-time sample must be bit-identical whether runs execute
serially in-process or fan out over a process pool, because per-run
seeds (not worker layout) carry all the randomness.
"""

from __future__ import annotations

import pytest

from repro.core.config import OperationMode
from repro.cpu.trace import Trace
from repro.errors import (
    ERROR_KIND_DETERMINISTIC,
    CampaignRunError,
    ConfigurationError,
    SimulationError,
)
from repro.pta.mbpta import estimate_pwcet
from repro.sim.backend import (
    ProcessPoolBackend,
    RetryPolicy,
    RunObserver,
    SerialBackend,
    StreamObserver,
    make_backend,
)
from repro.sim.campaign import collect_execution_times
from repro.sim.config import Scenario, SystemConfig
from repro.sim.simulator import (
    RunRequest,
    execute_request,
    run_isolation,
    run_workload,
)
from repro.utils.rng import derive_seeds
from tests.conftest import make_stream_trace

CONFIG = SystemConfig(l1_size=256, llc_size=2048)

SCENARIOS = [
    pytest.param(Scenario.efl(250), id="efl"),
    pytest.param(
        Scenario.cache_partitioning(2, num_cores=4, mode=OperationMode.ANALYSIS),
        id="cp",
    ),
]


class ExplodingTrace(Trace):
    """A trace whose execution always raises (worker-failure fixture)."""

    def __iter__(self):
        raise RuntimeError("boom: injected trace failure")


def exploding_trace() -> ExplodingTrace:
    good = make_stream_trace()
    return ExplodingTrace(good.name, good.pcs, good.kinds, good.addresses)


class TestRunRequest:
    def test_unknown_engine_rejected(self, stream_trace):
        with pytest.raises(ConfigurationError):
            RunRequest("warp", (stream_trace,), CONFIG, Scenario.efl(250), 1)

    def test_isolation_takes_one_trace(self, stream_trace):
        with pytest.raises(ConfigurationError):
            RunRequest(
                "isolation", (stream_trace, stream_trace), CONFIG,
                Scenario.efl(250), 1,
            )

    def test_needs_a_trace(self):
        with pytest.raises(ConfigurationError):
            RunRequest("workload", (), CONFIG, Scenario.efl(250), 1)

    def test_execute_matches_run_isolation(self, stream_trace):
        request = RunRequest.isolation(stream_trace, CONFIG, Scenario.efl(250), 42)
        assert execute_request(request) == run_isolation(
            stream_trace, CONFIG, Scenario.efl(250), 42
        )

    def test_execute_matches_run_workload(self, stream_trace):
        scenario = Scenario.efl(250, mode=OperationMode.DEPLOYMENT)
        traces = (stream_trace, make_stream_trace("other", base=0x20_0000))
        request = RunRequest.workload(traces, CONFIG, scenario, 42)
        assert execute_request(request) == run_workload(
            traces, CONFIG, scenario, 42
        )

    def test_with_run_preserves_template(self, stream_trace):
        template = RunRequest.isolation(stream_trace, CONFIG, Scenario.efl(250), 1)
        rebound = template.with_run(3, 99)
        assert rebound.index == 3 and rebound.seed == 99
        assert rebound.template_key() == template.template_key()


class TestBackendEquivalence:
    @pytest.mark.parametrize("scenario", SCENARIOS)
    def test_process_pool_matches_serial(self, stream_trace, scenario):
        serial = collect_execution_times(
            stream_trace, CONFIG, scenario, runs=8, master_seed=7,
            backend=SerialBackend(),
        )
        parallel = collect_execution_times(
            stream_trace, CONFIG, scenario, runs=8, master_seed=7,
            backend=ProcessPoolBackend(workers=2, force_pool=True),
        )
        assert parallel.execution_times == serial.execution_times
        assert parallel.seeds == serial.seeds
        assert parallel.master_seed == serial.master_seed
        assert parallel.instructions == serial.instructions
        assert parallel.runs == serial.runs
        assert parallel.task == serial.task
        assert parallel.scenario_label == serial.scenario_label
        assert parallel.hwm_seed == serial.hwm_seed
        # Records agree on everything but wall time (a measurement).
        for ours, theirs in zip(parallel.records, serial.records):
            assert ours.index == theirs.index
            assert ours.seed == theirs.seed
            assert ours.cycles == theirs.cycles
            assert ours.llc_hits == theirs.llc_hits
            assert ours.llc_misses == theirs.llc_misses
            assert ours.llc_forced_evictions == theirs.llc_forced_evictions
            assert ours.efl_stall_cycles == theirs.efl_stall_cycles
            assert ours.efl_evictions == theirs.efl_evictions
        # ... and the MBPTA estimates are therefore identical too.
        fit = lambda sample: estimate_pwcet(
            sample, block_size=4, check_iid=False
        ).pwcet_at(1e-15)
        assert fit(parallel.execution_times) == fit(serial.execution_times)

    def test_chunking_does_not_change_results(self, stream_trace):
        scenario = Scenario.efl(250)
        baseline = collect_execution_times(
            stream_trace, CONFIG, scenario, runs=7, master_seed=3
        )
        chunked = collect_execution_times(
            stream_trace, CONFIG, scenario, runs=7, master_seed=3,
            backend=ProcessPoolBackend(workers=2, chunk_size=3, force_pool=True),
        )
        assert chunked.execution_times == baseline.execution_times

    def test_observer_sees_all_runs_in_some_order(self, stream_trace):
        class Collector(RunObserver):
            def __init__(self):
                self.indices = []

            def on_run(self, record):
                self.indices.append(record.index)

        collector = Collector()
        collect_execution_times(
            stream_trace, CONFIG, Scenario.efl(250), runs=6, master_seed=1,
            backend=ProcessPoolBackend(workers=2, force_pool=True),
            observer=collector,
        )
        assert sorted(collector.indices) == list(range(6))


class TestFailureCapture:
    def test_serial_campaign_reports_failing_seed(self):
        trace = exploding_trace()
        with pytest.raises(CampaignRunError) as excinfo:
            collect_execution_times(
                trace, CONFIG, Scenario.efl(250), runs=4, master_seed=13
            )
        error = excinfo.value
        seeds = derive_seeds(13, 4)
        assert [index for index, _seed, _msg, _kind in error.failures] == [0, 1, 2, 3]
        assert [seed for _index, seed, _msg, _kind in error.failures] == seeds
        assert all("boom" in message for _i, _s, message, _k in error.failures)
        # A trace that raises fails identically on every attempt.
        assert all(
            kind == ERROR_KIND_DETERMINISTIC
            for _i, _s, _m, kind in error.failures
        )
        # The message names the first failing run's seed for reproduction.
        assert f"{seeds[0]:#x}" in str(error)

    def test_worker_failure_does_not_kill_the_pool(self):
        trace = exploding_trace()
        template = RunRequest.isolation(trace, CONFIG, Scenario.efl(250), 0)
        requests = [template.with_run(i, seed)
                    for i, seed in enumerate(derive_seeds(5, 6))]
        outcomes = ProcessPoolBackend(workers=2, force_pool=True).execute(requests)
        # Every run's failure is captured individually; none is lost.
        assert len(outcomes) == 6
        assert [outcome.index for outcome in outcomes] == list(range(6))
        assert all(outcome.failed for outcome in outcomes)
        assert all("boom" in outcome.error for outcome in outcomes)

    def test_failed_outcome_has_no_record(self):
        trace = exploding_trace()
        requests = [RunRequest.isolation(trace, CONFIG, Scenario.efl(250), 1)]
        outcome = SerialBackend().execute(requests)[0]
        # Misusing a failed outcome is a runtime state problem, not a
        # configuration problem.
        with pytest.raises(SimulationError):
            outcome.record()

    def test_deterministic_failure_not_retried(self):
        trace = exploding_trace()
        requests = [RunRequest.isolation(trace, CONFIG, Scenario.efl(250), 1)]
        outcome = SerialBackend(
            retry=RetryPolicy(max_attempts=5, backoff_s=0.0)
        ).execute(requests)[0]
        assert outcome.failed
        assert outcome.error_kind == ERROR_KIND_DETERMINISTIC
        # A deterministic failure surfaces after exactly one attempt.
        assert outcome.attempts == 1

    def test_observer_notified_of_failures(self, capsys):
        import sys

        trace = exploding_trace()
        with pytest.raises(CampaignRunError):
            collect_execution_times(
                trace, CONFIG, Scenario.efl(250), runs=2, master_seed=1,
                observer=StreamObserver(sys.stderr),
            )
        assert "FAILED" in capsys.readouterr().err

    def test_stream_observer_reports_resilience_counts(self):
        import io

        from repro.sim.campaign import CampaignResult

        stream = io.StringIO()
        observer = StreamObserver(stream)
        observer.on_campaign_start("task", "EFL250", 4)
        observer.on_retry(1, 0xABC, 1, "WorkerCrashError: worker died")
        observer.on_run_failed(2, 0xDEF, "boom")
        observer.on_campaign_end(
            CampaignResult(
                task="task", scenario_label="EFL250",
                execution_times=[10, 11], instructions=5, runs=2,
                wall_time_s=0.5,
            )
        )
        output = stream.getvalue()
        assert "1 failed" in output
        assert "1 retried" in output


class TestBackendConstruction:
    def test_make_backend(self):
        assert isinstance(make_backend("serial"), SerialBackend)
        pool = make_backend("process", workers=3)
        assert isinstance(pool, ProcessPoolBackend)
        assert pool.workers == 3
        with pytest.raises(ConfigurationError):
            make_backend("quantum")

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(workers=0)
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(workers=2, chunk_size=0)

    def test_heterogeneous_batch_rejected(self, stream_trace):
        a = RunRequest.isolation(stream_trace, CONFIG, Scenario.efl(250), 1, 0)
        b = RunRequest.isolation(stream_trace, CONFIG, Scenario.efl(500), 2, 1)
        with pytest.raises(ConfigurationError):
            ProcessPoolBackend(workers=2).execute([a, b])

    def test_empty_batch(self):
        assert ProcessPoolBackend(workers=2).execute([]) == []

    def test_single_request_stays_in_process(self, stream_trace):
        request = RunRequest.isolation(stream_trace, CONFIG, Scenario.efl(250), 9)
        outcome = ProcessPoolBackend(workers=2).execute([request])[0]
        assert not outcome.failed
        assert outcome.result == run_isolation(
            stream_trace, CONFIG, Scenario.efl(250), 9
        )

    def test_single_cpu_degrades_to_serial_with_warning(
        self, stream_trace, monkeypatch
    ):
        import repro.sim.backend as backend_module

        messages = []

        class Recorder(RunObserver):
            def on_message(self, message):
                messages.append(message)

        monkeypatch.setattr(backend_module, "usable_cpus", lambda: 1)
        serial = collect_execution_times(
            stream_trace, CONFIG, Scenario.efl(250), runs=6, master_seed=2,
            engine="scalar",
        )
        degraded = collect_execution_times(
            stream_trace, CONFIG, Scenario.efl(250), runs=6, master_seed=2,
            backend=ProcessPoolBackend(workers=4), observer=Recorder(),
        )
        assert degraded.execution_times == serial.execution_times
        assert any("degrading" in message for message in messages)

    def test_degrade_warning_emitted_once_per_campaign(
        self, stream_trace, monkeypatch
    ):
        import repro.sim.backend as backend_module

        messages = []

        class Recorder(RunObserver):
            def on_message(self, message):
                messages.append(message)

        monkeypatch.setattr(backend_module, "usable_cpus", lambda: 1)
        backend = ProcessPoolBackend(workers=4)
        recorder = Recorder()
        for master_seed in (2, 3):
            collect_execution_times(
                stream_trace, CONFIG, Scenario.efl(250), runs=6,
                master_seed=master_seed, backend=backend, observer=recorder,
            )
        degrades = [m for m in messages if "degrading" in m]
        # Exactly one advisory per campaign — the backend instance was
        # reused, so a stale once-ever guard would show 1 and a
        # per-consultation emission could show more.
        assert len(degrades) == 2

    def test_degrade_warning_not_repeated_within_one_campaign(
        self, stream_trace, monkeypatch
    ):
        import repro.sim.backend as backend_module

        messages = []

        class Recorder(RunObserver):
            def on_message(self, message):
                messages.append(message)

        monkeypatch.setattr(backend_module, "usable_cpus", lambda: 1)
        backend = ProcessPoolBackend(workers=4)
        recorder = Recorder()
        requests = [
            RunRequest.isolation(
                stream_trace, CONFIG, Scenario.efl(250), seed, index=index
            )
            for index, seed in enumerate((11, 12, 13))
        ]
        backend.execute(requests, observer=recorder)
        # Consulting the degrade decision again mid-campaign (as a
        # per-wave re-dispatch would) must stay silent...
        assert backend._degrades(requests, recorder) is True
        assert backend._degrades(requests, recorder) is True
        assert sum("degrading" in m for m in messages) == 1
        # ...while the next campaign warns afresh.
        backend.execute(requests, observer=recorder)
        assert sum("degrading" in m for m in messages) == 2

    def test_degrade_warning_deduped_in_structured_log(
        self, stream_trace, monkeypatch
    ):
        import io
        import json as json_mod

        import repro.sim.backend as backend_module
        from repro.observability import (
            MetricsRegistry,
            StructuredLogger,
            Telemetry,
            Tracer,
        )

        monkeypatch.setattr(backend_module, "usable_cpus", lambda: 1)
        stream = io.StringIO()
        telemetry = Telemetry(
            logger=StructuredLogger(stream=stream, level="info", fmt="json"),
            metrics=MetricsRegistry(),
            tracer=Tracer(),
        )
        collect_execution_times(
            stream_trace, CONFIG, Scenario.efl(250), runs=6, master_seed=2,
            backend=ProcessPoolBackend(workers=4), telemetry=telemetry,
        )
        records = [json_mod.loads(line)
                   for line in stream.getvalue().splitlines()]
        degrades = [r for r in records
                    if "degrading" in str(r.get("message", ""))]
        assert len(degrades) == 1

    def test_force_pool_overrides_single_cpu_degrade(
        self, stream_trace, monkeypatch
    ):
        import repro.sim.backend as backend_module

        messages = []

        class Recorder(RunObserver):
            def on_message(self, message):
                messages.append(message)

        monkeypatch.setattr(backend_module, "usable_cpus", lambda: 1)
        serial = collect_execution_times(
            stream_trace, CONFIG, Scenario.efl(250), runs=6, master_seed=2,
            engine="scalar",
        )
        forced = collect_execution_times(
            stream_trace, CONFIG, Scenario.efl(250), runs=6, master_seed=2,
            backend=ProcessPoolBackend(workers=2, force_pool=True),
            observer=Recorder(),
        )
        assert forced.execution_times == serial.execution_times
        assert not any("degrading" in message for message in messages)

    def test_keyboard_interrupt_terminates_pool(self, stream_trace, monkeypatch):
        import multiprocessing as mp

        import repro.sim.backend as backend_module

        # Interrupt the dispatcher on its first poll sleep, as Ctrl-C
        # would; the backend must terminate and join its pool before
        # re-raising, leaking no worker processes.  Only the first
        # sleep raises: pool teardown may legitimately sleep.
        real_sleep = backend_module.time.sleep
        interrupted = []

        def interrupting_sleep(seconds):
            if not interrupted:
                interrupted.append(True)
                raise KeyboardInterrupt
            return real_sleep(seconds)

        monkeypatch.setattr(backend_module.time, "sleep", interrupting_sleep)
        template = RunRequest.isolation(stream_trace, CONFIG, Scenario.efl(250), 0)
        requests = [template.with_run(index, seed)
                    for index, seed in enumerate(derive_seeds(5, 6))]
        with pytest.raises(KeyboardInterrupt):
            ProcessPoolBackend(workers=2, force_pool=True).execute(requests)
        monkeypatch.undo()
        for child in mp.active_children():
            child.join(timeout=5)
        assert mp.active_children() == []
