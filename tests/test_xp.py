"""Array-backend seam: the switchable ``xp`` allocation namespace.

The guarantees under test:

* the default and the ``auto`` fallback resolve to NumPy on a host
  without CuPy, and ``numpy`` pins it explicitly;
* demanding ``cupy`` on a host without it is a labelled
  :class:`~repro.errors.ConfigurationError`, never a silent CPU run;
* unknown names are rejected by name;
* the engines allocate lane state through the seam, so a campaign run
  after an explicit backend switch is bit-identical to the default
  (both backends implement the same integer arithmetic).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.campaign import collect_execution_times
from repro.sim.config import Scenario, SystemConfig
from repro.utils.xp import (
    ARRAY_BACKEND_NAMES,
    array_backend_name,
    cupy_available,
    set_array_backend,
    xp,
)

from .conftest import make_stream_trace

CONFIG = SystemConfig(l1_size=256, llc_size=2048)
SCENARIO = Scenario.efl(100)


@pytest.fixture(autouse=True)
def restore_backend():
    """Leave the process-global backend as the suite found it."""
    yield
    set_array_backend("auto")


def test_names_are_the_cli_choices():
    assert ARRAY_BACKEND_NAMES == ("auto", "numpy", "cupy")


def test_default_backend_is_numpy():
    assert xp.module is np or cupy_available()
    assert array_backend_name() in ("numpy", "cupy")


def test_numpy_pins_the_cpu_path():
    assert set_array_backend("numpy") == "numpy"
    assert xp.module is np
    assert array_backend_name() == "numpy"
    # The proxy resolves allocation calls on the active module.
    block = xp.zeros((2, 3), dtype=np.int64)
    assert isinstance(block, np.ndarray)


def test_auto_degrades_silently_without_cupy():
    resolved = set_array_backend("auto")
    if cupy_available():  # pragma: no cover — cupy not installed in CI
        assert resolved == "cupy"
    else:
        assert resolved == "numpy"
        assert xp.module is np


def test_unknown_backend_rejected_by_name():
    with pytest.raises(ConfigurationError, match="unknown array backend"):
        set_array_backend("torch")


@pytest.mark.skipif(cupy_available(), reason="host has a working CuPy")
def test_demanding_cupy_without_it_is_an_error():
    with pytest.raises(ConfigurationError, match="cupy"):
        set_array_backend("cupy")
    # The failed demand must not corrupt the active namespace.
    assert array_backend_name() == "numpy"
    assert xp.module is np


def test_campaign_bit_identical_across_backend_switch():
    trace = make_stream_trace("xp", words=32, sweeps=2)
    set_array_backend("numpy")
    pinned = collect_execution_times(
        trace, CONFIG, SCENARIO, runs=16, master_seed=3, engine="kernel"
    )
    set_array_backend("auto")
    auto = collect_execution_times(
        trace, CONFIG, SCENARIO, runs=16, master_seed=3, engine="kernel"
    )
    assert pinned.execution_times == auto.execution_times
