"""Sharded batch engine: partitioning, shared programs, plan cache.

Three properties earn the sharded engine its place:

* **partitioning is sound** — every lane lands in exactly one shard,
  order preserved, sizes balanced (proved by hypothesis over arbitrary
  lane/shard counts);
* **bit-identity is shard-count-invariant** — 1, 2, 3 or 7 shards, a
  shared-memory program or a locally compiled one, the sample equals
  the scalar interpreter's exactly;
* **compile-once** — a PWCETTable sweep compiles each benchmark's
  trace once and answers every further (MID, way-count) campaign from
  its plan cache.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st
import pytest

from tests.conftest import make_stream_trace

from repro.errors import ConfigurationError
from repro.sim.backend import RunObserver, SerialBackend
from repro.sim.batch import (
    SHARDED_AUTO_MIN_RUNS,
    ShardedBatchBackend,
    _TemplatePlan,
    shard_lanes,
)
from repro.sim.campaign import collect_execution_times
from repro.sim.checkpoint import CampaignCheckpoint
from repro.sim.config import Scenario, SystemConfig
from repro.sim.plancache import PlanCache, SharedProgram, TraceProgram
from repro.sim.simulator import RunRequest
from repro.utils.rng import SplitMix64, derive_seeds, splitmix64_draw

CONFIG = SystemConfig(l1_size=256, llc_size=2048)
SCENARIO = Scenario.efl(250)


def record_key(record):
    return (
        record.index,
        record.seed,
        record.cycles,
        record.instructions,
        record.llc_hits,
        record.llc_misses,
        record.llc_forced_evictions,
        record.efl_stall_cycles,
        record.efl_evictions,
        record.memory_reads,
        record.memory_writes,
    )


@pytest.fixture(scope="module")
def trace():
    return make_stream_trace("shardeq", words=48, sweeps=3, store_every=2)


class TestShardLanes:
    @given(
        count=st.integers(min_value=0, max_value=400),
        shards=st.integers(min_value=1, max_value=40),
    )
    @settings(max_examples=200, deadline=None)
    def test_every_lane_in_exactly_one_shard(self, count, shards):
        jobs = [(index, 1000 + index, 1) for index in range(count)]
        parts = shard_lanes(jobs, shards)
        # Exactly-one: concatenating the shards in order reproduces the
        # job list, so no lane is lost, duplicated or reordered.
        assert [job for part in parts for job in part] == jobs
        assert all(part for part in parts)  # no empty shards
        if count:
            sizes = [len(part) for part in parts]
            assert max(sizes) - min(sizes) <= 1  # balanced
            assert len(parts) == min(shards, count)

    @given(
        count=st.integers(min_value=1, max_value=400),
        shards=st.integers(min_value=1, max_value=8),
        max_size=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=200, deadline=None)
    def test_max_size_bounds_every_shard(self, count, shards, max_size):
        jobs = [(index, index, 1) for index in range(count)]
        parts = shard_lanes(jobs, shards, max_size)
        assert [job for part in parts for job in part] == jobs
        assert all(len(part) <= max_size for part in parts)

    def test_deterministic(self):
        jobs = [(index, index * 7, 1) for index in range(29)]
        assert shard_lanes(jobs, 4) == shard_lanes(jobs, 4)

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            shard_lanes([], 0)
        with pytest.raises(ConfigurationError):
            shard_lanes([], 2, 0)

    def test_empty_jobs(self):
        assert shard_lanes([], 3) == []


class TestSeedSchedule:
    def test_per_shard_seeds_match_scalar_schedule(self, trace):
        # Sharding must not change which PRNG draws a lane consumes:
        # the k-th SplitMix64 draw the batch sweep computes for a lane
        # equals the k-th next_u64() of that lane's own run seed —
        # regardless of which shard the lane landed in.
        import numpy as np

        seeds = derive_seeds(123, 23)
        jobs = [(index, seed, 1) for index, seed in enumerate(seeds)]
        nc = CONFIG.num_cores
        for shard in shard_lanes(jobs, 3):
            shard_seeds = np.array(
                [seed for _i, seed, _a in shard], dtype=np.uint64
            )
            for k in (1, 2, 2 * nc + 1, 4 * nc + 2, 4 * nc + 4):
                draws = splitmix64_draw(shard_seeds, k)
                for lane, (_index, seed, _attempt) in enumerate(shard):
                    stream = SplitMix64(seed)
                    expected = [stream.next_u64() for _ in range(k)][-1]
                    assert int(draws[lane]) == expected


class TestShardCountInvariance:
    @pytest.mark.parametrize("workers", [1, 2, 3, 7])
    def test_bit_identical_to_scalar(self, trace, workers):
        scalar = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=19, master_seed=5, engine="scalar"
        )
        sharded = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=19, master_seed=5,
            backend=ShardedBatchBackend(
                workers=workers, force_pool=True, strict=True
            ),
        )
        assert sharded.execution_times == scalar.execution_times
        assert sharded.seeds == scalar.seeds
        assert sharded.instructions == scalar.instructions
        assert [record_key(r) for r in sharded.records] == \
            [record_key(r) for r in scalar.records]

    def test_checksums_match_single_process_batch(self, trace):
        from repro.sim.batch import BatchBackend

        seeds = derive_seeds(31, 9)
        template = RunRequest.isolation(trace, CONFIG, SCENARIO, seeds[0])
        requests = [template.with_run(i, seed) for i, seed in enumerate(seeds)]
        single = BatchBackend(strict=True).execute(requests)
        sharded = ShardedBatchBackend(
            workers=3, force_pool=True, strict=True
        ).execute(requests)
        assert [o.checksum for o in sharded] == [o.checksum for o in single]
        assert [o.result for o in sharded] == [o.result for o in single]

    def test_engine_sharded_is_strict(self, trace):
        from repro.core.config import OperationMode

        with pytest.raises(ConfigurationError, match="analysis-mode"):
            collect_execution_times(
                trace, CONFIG,
                Scenario.efl(250, mode=OperationMode.DEPLOYMENT),
                runs=4, master_seed=1, engine="sharded",
            )

    def test_engine_batch_with_workers_shards(self, trace):
        scalar = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=11, master_seed=8, engine="scalar"
        )
        sharded = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=11, master_seed=8,
            engine="batch", workers=2,
        )
        assert sharded.execution_times == scalar.execution_times
        assert sharded.backend.startswith("sharded[")

    def test_workers_with_scalar_engine_rejected(self, trace):
        with pytest.raises(ConfigurationError, match="shard workers"):
            collect_execution_times(
                trace, CONFIG, SCENARIO, runs=4, master_seed=1,
                engine="scalar", workers=2,
            )


class TestSingleCpuDegrade:
    def test_degrades_with_warning_on_one_cpu(self, trace, monkeypatch):
        import repro.sim.backend as backend_mod
        import repro.sim.batch as batch_mod

        messages = []

        class Recorder(RunObserver):
            def on_message(self, message):
                messages.append(message)

        monkeypatch.setattr(backend_mod, "usable_cpus", lambda: 1)
        scalar = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=9, master_seed=3, engine="scalar"
        )
        sharded = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=9, master_seed=3,
            backend=batch_mod.ShardedBatchBackend(workers=4, strict=True),
            observer=Recorder(),
        )
        assert sharded.execution_times == scalar.execution_times
        assert any("degrading" in message for message in messages)

    def test_force_pool_keeps_the_pool(self, trace, monkeypatch):
        import repro.sim.backend as backend_mod

        messages = []

        class Recorder(RunObserver):
            def on_message(self, message):
                messages.append(message)

        monkeypatch.setattr(backend_mod, "usable_cpus", lambda: 1)
        scalar = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=9, master_seed=3, engine="scalar"
        )
        forced = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=9, master_seed=3,
            backend=ShardedBatchBackend(
                workers=2, force_pool=True, strict=True
            ),
            observer=Recorder(),
        )
        assert forced.execution_times == scalar.execution_times
        assert not any("degrading" in message for message in messages)

    def test_auto_policy_needs_parallelism_and_size(self, trace, monkeypatch):
        import repro.sim.campaign as campaign_mod

        # Plenty of CPUs + explicit workers -> sharded.
        monkeypatch.setattr(campaign_mod, "usable_cpus", lambda: 8)
        chosen = campaign_mod._select_backend("auto", None, workers=4, runs=16)
        assert isinstance(chosen, ShardedBatchBackend)
        # Plenty of CPUs, no workers, small campaign -> single-process.
        chosen = campaign_mod._select_backend("auto", None, runs=16)
        assert type(chosen).__name__ == "BatchBackend"
        # Plenty of CPUs, no workers, big campaign -> sharded.
        chosen = campaign_mod._select_backend(
            "auto", None, runs=SHARDED_AUTO_MIN_RUNS
        )
        assert isinstance(chosen, ShardedBatchBackend)
        # One CPU -> never auto-sharded.
        monkeypatch.setattr(campaign_mod, "usable_cpus", lambda: 1)
        chosen = campaign_mod._select_backend(
            "auto", None, runs=SHARDED_AUTO_MIN_RUNS
        )
        assert type(chosen).__name__ == "BatchBackend"


class TestSharedProgram:
    def test_round_trip_preserves_arrays_and_steps(self, trace):
        import numpy as np

        program = TraceProgram.compile(trace, CONFIG)
        shared = SharedProgram.create(program)
        try:
            clone = shared.handle.attach()
            try:
                from repro.sim.plancache import SHARED_FIELDS

                for name in SHARED_FIELDS:
                    np.testing.assert_array_equal(
                        getattr(clone, name), getattr(program, name)
                    )
                    assert not getattr(clone, name).flags.writeable
                assert clone.steps == program.steps
                assert clone.task == program.task
                assert clone.instructions == program.instructions
                assert clone.fast_ihits == program.fast_ihits
                assert clone.fast_dhits == program.fast_dhits
            finally:
                clone.close()
        finally:
            shared.dispose()

    def test_dispose_is_idempotent(self, trace):
        program = TraceProgram.compile(trace, CONFIG)
        shared = SharedProgram.create(program)
        shared.dispose()
        shared.dispose()

    def test_attached_plan_executes_bit_identically(self, trace):
        seeds = derive_seeds(77, 5)
        template = RunRequest.isolation(trace, CONFIG, SCENARIO, seeds[0])
        requests = [template.with_run(i, s) for i, s in enumerate(seeds)]
        reference = SerialBackend().execute(requests)
        program = TraceProgram.compile(trace, CONFIG)
        shared = SharedProgram.create(program)
        try:
            clone = shared.handle.attach()
            try:
                plan = _TemplatePlan(CONFIG, SCENARIO, 0, clone)
                outcomes = plan.execute(requests)
                assert [o.checksum for o in outcomes] == \
                    [o.checksum for o in reference]
            finally:
                clone.close()
        finally:
            shared.dispose()


class TestPlanCache:
    def test_hit_and_miss_accounting(self, trace):
        cache = PlanCache()
        first = cache.program(trace, CONFIG)
        again = cache.program(trace, CONFIG)
        assert again is first
        assert cache.snapshot() == (1, 1)
        other = make_stream_trace("other", words=16, sweeps=1)
        cache.program(other, CONFIG)
        assert cache.snapshot() == (1, 2)
        assert len(cache) == 2

    def test_distinct_configs_compile_separately(self, trace):
        cache = PlanCache()
        cache.program(trace, CONFIG)
        cache.program(trace, SystemConfig(l1_size=512, llc_size=2048))
        assert cache.snapshot() == (0, 2)

    def test_eviction_respects_max_entries(self):
        cache = PlanCache(max_entries=2)
        traces = [
            make_stream_trace(f"lru{i}", words=8, sweeps=1) for i in range(3)
        ]
        for t in traces:
            cache.program(t, CONFIG)
        assert len(cache) == 2
        # The oldest entry was evicted: looking it up recompiles.
        cache.program(traces[0], CONFIG)
        assert cache.misses == 4

    def test_invalid_max_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            PlanCache(max_entries=0)

    def test_campaign_reports_cache_traffic(self, trace):
        cache = PlanCache()
        first = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=6, master_seed=1,
            engine="batch", plan_cache=cache,
        )
        assert (first.plan_cache_hits, first.plan_cache_misses) == (0, 1)
        second = collect_execution_times(
            trace, CONFIG, Scenario.efl(500), runs=6, master_seed=2,
            engine="batch", plan_cache=cache,
        )
        assert (second.plan_cache_hits, second.plan_cache_misses) == (1, 0)

    def test_pwcet_table_compiles_each_trace_once(self):
        from repro.analysis.experiments import PWCETTable
        from repro.workloads.scale import ExperimentScale

        table = PWCETTable(scale=ExperimentScale.tiny(), seed=3)
        setups = [("efl", 100), ("efl", 250), ("cp", 1)]
        benches = list(table.traces)[:2]
        for bench in benches:
            for kind, value in setups:
                table.campaign(bench, kind, value)
        cache = table.plan_cache
        # Compile-once: one miss per benchmark, every further (MID,
        # ways) scenario over the same trace/geometry is a hit.
        assert cache.misses == len(benches)
        assert cache.hits == len(benches) * (len(setups) - 1)

    def test_eviction_never_drops_pinned_entries(self, trace):
        cache = PlanCache(max_entries=1)
        program = cache.program(trace, CONFIG)
        cache.pin(trace, CONFIG)
        # Flood far past capacity: the pinned entry must survive every
        # eviction pass (the cache rides above max_entries instead).
        floods = [
            make_stream_trace(f"flood{i}", words=8, sweeps=1) for i in range(4)
        ]
        for t in floods:
            cache.program(t, CONFIG)
        assert cache.program(trace, CONFIG) is program  # no recompile
        hits_before = cache.hits
        cache.unpin(trace, CONFIG)
        # Capacity is re-enforced once the pin releases; the entry was
        # most recently used, so it is the one that stays.
        assert len(cache) == 1
        assert cache.program(trace, CONFIG) is program
        assert cache.hits == hits_before + 1

    def test_pin_hit_miss_counters(self, trace):
        cache = PlanCache()
        # Pinning an empty slot pre-warms it: a pin miss.
        cache.pin(trace, CONFIG)
        assert (cache.pin_hits, cache.pin_misses) == (0, 1)
        cache.program(trace, CONFIG)
        # Pinning a slot that already holds a compiled program is a
        # pin hit (the pin protects real work).
        cache.pin(trace, CONFIG)
        assert (cache.pin_hits, cache.pin_misses) == (1, 1)
        cache.unpin(trace, CONFIG)
        cache.unpin(trace, CONFIG)
        assert not cache.pinned(trace, CONFIG)

    def test_unpin_without_pin_raises(self, trace):
        cache = PlanCache()
        cache.program(trace, CONFIG)
        with pytest.raises(ConfigurationError, match="unpin"):
            cache.unpin(trace, CONFIG)
        # Double-unpin after a single pin is equally a caller bug.
        cache.pin(trace, CONFIG)
        cache.unpin(trace, CONFIG)
        with pytest.raises(ConfigurationError, match="unpin"):
            cache.unpin(trace, CONFIG)

    def test_clear_keeps_pinned_entries(self, trace):
        cache = PlanCache()
        program = cache.program(trace, CONFIG)
        other = make_stream_trace("clearme", words=8, sweeps=1)
        cache.program(other, CONFIG)
        cache.pin(trace, CONFIG)
        cache.clear()
        assert len(cache) == 1
        assert cache.program(trace, CONFIG) is program
        cache.unpin(trace, CONFIG)

    def test_pwcet_table_bench_row_pins_and_unpins(self):
        from repro.analysis.experiments import PWCETTable
        from repro.workloads.scale import ExperimentScale

        table = PWCETTable(scale=ExperimentScale.tiny(), seed=3)
        bench = next(iter(table.traces))
        trace = table.traces[bench]
        cache = table.plan_cache
        with table.bench_row(bench):
            assert cache.pinned(trace, table.config)
            table.campaign(bench, "efl", 100)
            table.campaign(bench, "efl", 250)
        # Row finished: the pin is released (a stale pin here would
        # hold the entry above capacity forever)...
        assert not cache.pinned(trace, table.config)
        # ...and it was a pre-warm pin: the slot was empty at pin time.
        assert (cache.pin_hits, cache.pin_misses) == (0, 1)

    def test_iid_compliance_leaves_no_stale_pins(self):
        from repro.analysis.experiments import PWCETTable, run_iid_compliance
        from repro.workloads.scale import ExperimentScale

        table = PWCETTable(scale=ExperimentScale.tiny(), seed=3)
        run_iid_compliance(table, mid=100, bench_ids=list(table.traces)[:2])
        cache = table.plan_cache
        for bench, trace in table.traces.items():
            assert not cache.pinned(trace, table.config), bench

    def test_render_campaign_reports_plan_cache(self, trace):
        from repro.analysis.reporting import render_campaign

        result = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=6, master_seed=1,
            engine="batch", plan_cache=PlanCache(),
        )
        rendered = render_campaign(result)
        assert "plan cache: 1 compile(s), 0 hit(s)" in rendered

    def test_scalar_campaign_reports_no_cache_traffic(self, trace):
        from repro.analysis.reporting import render_campaign

        result = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=4, master_seed=1, engine="scalar"
        )
        assert (result.plan_cache_hits, result.plan_cache_misses) == (0, 0)
        assert "plan cache" not in render_campaign(result)

    def test_kernel_campaign_surfaces_compile_stats(self, trace):
        from repro.analysis.reporting import render_campaign
        from repro.sim.campaign import CampaignResult

        result = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=4, master_seed=1,
            engine="kernel", plan_cache=PlanCache(),
        )
        stats = result.kernel_stats
        assert stats is not None
        # The conservation keys the fusion pass maintains.
        for key in ("chains", "segments", "fused_accesses",
                    "fusion_ratio", "ifetch", "dmem"):
            assert key in stats, key
        rendered = render_campaign(result)
        assert "kernel plan:" in rendered
        assert "megakernel segments" in rendered
        # The stats survive the wire format round-trip.
        clone = CampaignResult.from_dict(result.to_dict())
        assert clone.kernel_stats == stats

    def test_non_kernel_campaigns_have_no_kernel_stats(self, trace):
        from repro.analysis.reporting import render_campaign

        for engine in ("scalar", "batch"):
            result = collect_execution_times(
                trace, CONFIG, SCENARIO, runs=4, master_seed=1,
                engine=engine,
                plan_cache=PlanCache() if engine == "batch" else None,
            )
            assert result.kernel_stats is None, engine
            assert "kernel plan" not in render_campaign(result)

    def test_warm_plan_cache_repeat_is_bit_identical(self, trace):
        """Two campaigns through one plan cache: the second reuses the
        compiled plan AND the recorded presize hints, and must still
        reproduce the first sample exactly."""
        cache = PlanCache()
        first = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=8, master_seed=9,
            engine="kernel", plan_cache=cache,
        )
        second = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=8, master_seed=9,
            engine="kernel", plan_cache=cache,
        )
        assert first.execution_times == second.execution_times
        assert second.plan_cache_hits > 0


class TestShardedCheckpoint:
    def test_resume_is_bit_identical(self, trace, tmp_path):
        journal = tmp_path / "campaign.jsonl"
        reference = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=16, master_seed=6, engine="scalar"
        )

        class KillAfter(RunObserver):
            def __init__(self, limit):
                self.limit = limit
                self.seen = 0

            def on_run(self, record):
                self.seen += 1
                if self.seen >= self.limit:
                    raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            collect_execution_times(
                trace, CONFIG, SCENARIO, runs=16, master_seed=6,
                engine="scalar", observer=KillAfter(6),
                checkpoint=CampaignCheckpoint(journal, resume=True),
            )
        survived = len(journal.read_text().splitlines()) - 1
        assert survived >= 6
        resumed = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=16, master_seed=6,
            backend=ShardedBatchBackend(
                workers=2, force_pool=True, strict=True
            ),
            checkpoint=CampaignCheckpoint(journal, resume=True),
        )
        assert resumed.resumed_runs == survived
        assert resumed.execution_times == reference.execution_times
        assert resumed.seeds == reference.seeds

    def test_journal_header_records_backend(self, trace, tmp_path):
        import json

        journal = tmp_path / "campaign.jsonl"
        collect_execution_times(
            trace, CONFIG, SCENARIO, runs=5, master_seed=2,
            backend=ShardedBatchBackend(
                workers=2, force_pool=True, strict=True
            ),
            checkpoint=CampaignCheckpoint(journal, resume=False),
        )
        header = json.loads(journal.read_text().splitlines()[0])
        assert header["backend"] == "sharded[2]"


class TestShardedEligibility:
    def test_strict_rejects_heterogeneous(self, trace):
        other = make_stream_trace("hetero", words=16, sweeps=1)
        a = RunRequest.isolation(trace, CONFIG, SCENARIO, 1, index=0)
        b = RunRequest.isolation(other, CONFIG, SCENARIO, 2, index=1)
        with pytest.raises(ConfigurationError, match="heterogeneous"):
            ShardedBatchBackend(
                workers=2, force_pool=True, strict=True
            ).execute([a, b])

    def test_non_strict_falls_back_to_serial(self, trace):
        from repro.core.config import OperationMode

        messages = []

        class Recorder(RunObserver):
            def on_message(self, message):
                messages.append(message)

        scenario = Scenario.efl(250, mode=OperationMode.DEPLOYMENT)
        seeds = derive_seeds(11, 4)
        template = RunRequest.isolation(trace, CONFIG, scenario, seeds[0])
        requests = [template.with_run(i, s) for i, s in enumerate(seeds)]
        outcomes = ShardedBatchBackend(
            workers=2, force_pool=True
        ).execute(requests, observer=Recorder())
        reference = SerialBackend().execute(requests)
        assert [o.checksum for o in outcomes] == \
            [o.checksum for o in reference]
        assert any("falling back" in message for message in messages)

    def test_empty_request_list(self):
        backend = ShardedBatchBackend(workers=2, force_pool=True, strict=True)
        assert backend.execute([]) == []

    def test_invalid_max_lanes_rejected(self):
        with pytest.raises(ConfigurationError, match="max_lanes"):
            ShardedBatchBackend(workers=2, max_lanes=0)
