"""Adaptive MBPTA campaigns: streaming EVT convergence.

The guarantees under test:

* the :class:`~repro.pta.adaptive.StreamingGumbelEstimator` is
  bit-identical to a from-scratch sort-and-fit at every wave boundary
  (property-tested), so "incremental" is an implementation detail the
  numbers cannot observe;
* an adaptive campaign's executed sample is bit-identical to the
  *prefix* of the fixed-R campaign's sample, across every engine, and
  a checkpoint-killed-then-resumed adaptive campaign reproduces the
  same stopping decision run-for-run;
* ``min_runs == max_runs == R`` degrades to the fixed-R campaign
  exactly;
* the service ledger extends to ``runs_requested == runs_simulated +
  runs_resumed + runs_served_from_cache + runs_shed +
  runs_saved_converged`` and adaptive jobs never collide with fixed-R
  jobs in the result store.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.observability import Telemetry
from repro.pta.adaptive import (
    ConvergencePolicy,
    StreamingGumbelEstimator,
    WaveScheduler,
)
from repro.pta.evt import (
    block_maxima,
    fit_gumbel_pwm,
    pwcet_estimate,
    validate_exceedance,
)
from repro.analysis.reporting import render_campaign
from repro.service import CampaignJob, JobQueue, ResultStore
from repro.service.journal import job_from_spec, job_spec
from repro.sim.campaign import CampaignResult, collect_execution_times
from repro.sim.checkpoint import CampaignCheckpoint, campaign_fingerprint
from repro.sim.config import Scenario, SystemConfig
from repro.workloads.scale import ExperimentScale

from .conftest import make_stream_trace

CONFIG = SystemConfig(l1_size=256, llc_size=2048)
SCENARIO = Scenario.efl(100)
SEED = 5
MAX_RUNS = 64

#: A policy loose enough to converge on the tiny test trace well
#: before MAX_RUNS (the i.i.d. gate is off: 64-run smoke samples are
#: too small for 5% test thresholds to be meaningful).
POLICY = ConvergencePolicy(
    min_runs=8, max_runs=MAX_RUNS, wave_size=8, block_size=4,
    rtol=0.5, stable_waves=2, require_iid=False,
)

#: A policy that can never converge (more stable waves than waves).
NEVER = ConvergencePolicy(
    min_runs=8, max_runs=MAX_RUNS, wave_size=8, block_size=4,
    rtol=0.5, stable_waves=10_000, require_iid=False,
)


@pytest.fixture
def trace():
    return make_stream_trace("adapt", words=32, sweeps=2)


def run(trace, adaptive=None, runs=MAX_RUNS, engine="scalar", workers=None,
        journal=None, resume=True, telemetry=None):
    checkpoint = (
        CampaignCheckpoint(journal, resume=resume) if journal else None
    )
    return collect_execution_times(
        trace, CONFIG, SCENARIO, runs=runs, master_seed=SEED,
        engine=engine, workers=workers, adaptive=adaptive,
        checkpoint=checkpoint, telemetry=telemetry,
    )


# ----------------------------------------------------------------------
# policy validation
# ----------------------------------------------------------------------
class TestPolicyValidation:
    def make(self, **overrides):
        fields = dict(min_runs=8, max_runs=64, wave_size=8, block_size=4)
        fields.update(overrides)
        return ConvergencePolicy(**fields)

    @pytest.mark.parametrize("exceedance", [0.0, 1.0, -0.1, 1.5, True, "p"])
    def test_exceedance_rejected_at_construction(self, exceedance):
        with pytest.raises(ConfigurationError, match="exceedance"):
            self.make(exceedance=exceedance)

    @pytest.mark.parametrize("prob", [0.0, 1.0, -1e-9, math.nan, math.inf])
    def test_validate_exceedance_rejects_out_of_range(self, prob):
        with pytest.raises(ConfigurationError, match="exceedance"):
            validate_exceedance(prob)

    def test_validate_exceedance_accepts_open_interval(self):
        validate_exceedance(1e-15)
        validate_exceedance(0.5)

    def test_bounds_validated(self):
        with pytest.raises(ConfigurationError, match="min_runs"):
            self.make(min_runs=0)
        with pytest.raises(ConfigurationError, match="max_runs"):
            self.make(max_runs=4)
        with pytest.raises(ConfigurationError, match="wave_size"):
            self.make(wave_size=0)
        with pytest.raises(ConfigurationError, match="stable_waves"):
            self.make(stable_waves=0)
        with pytest.raises(ConfigurationError, match="block_size"):
            self.make(block_size=0)
        with pytest.raises(ConfigurationError, match="rtol"):
            self.make(rtol=0.0)
        with pytest.raises(ConfigurationError, match="rtol"):
            self.make(rtol=math.inf)
        with pytest.raises(ConfigurationError, match="2 blocks"):
            self.make(min_runs=1, max_runs=7, block_size=4)

    def test_for_scale_defaults(self):
        scale = ExperimentScale.quick()
        policy = ConvergencePolicy.for_scale(scale)
        assert policy.max_runs == scale.analysis_runs
        assert policy.wave_size == scale.block_size
        assert policy.block_size == scale.block_size
        assert policy.min_runs >= 2 * scale.block_size
        assert policy.min_runs <= policy.max_runs

    def test_round_trip_and_fingerprint(self):
        policy = self.make(rtol=0.01, exceedance=1e-12)
        assert ConvergencePolicy.from_dict(policy.to_dict()) == policy
        assert json.loads(json.dumps(policy.to_dict())) == policy.to_dict()
        other = self.make(rtol=0.02, exceedance=1e-12)
        assert policy.fingerprint_key() != other.fingerprint_key()


# ----------------------------------------------------------------------
# streaming estimator == from-scratch fit (property)
# ----------------------------------------------------------------------
times = st.floats(min_value=1.0, max_value=1e9, allow_nan=False,
                  allow_infinity=False)


@st.composite
def waved_samples(draw):
    """A sample, a block size and a partition of the sample into waves."""
    sample = draw(st.lists(times, min_size=1, max_size=80))
    block_size = draw(st.integers(min_value=1, max_value=5))
    waves = []
    position = 0
    while position < len(sample):
        width = draw(st.integers(min_value=1, max_value=10))
        waves.append(sample[position:position + width])
        position += width
    return sample, block_size, waves


class TestEstimatorBitIdentity:
    @given(waved_samples())
    @settings(max_examples=200, deadline=None)
    def test_incremental_equals_from_scratch_at_every_boundary(self, case):
        sample, block_size, waves = case
        policy = ConvergencePolicy(
            min_runs=1, max_runs=max(len(sample), 2 * block_size),
            wave_size=1, block_size=block_size,
            rtol=1e-300, stable_waves=10_000, require_iid=False,
        )
        estimator = StreamingGumbelEstimator(policy)
        consumed = 0
        for wave in waves:
            estimator.observe_wave(wave)
            consumed += len(wave)
            prefix = sample[:consumed]
            # block_maxima() itself refuses < 2 blocks, so spell out
            # the fixed-window maxima for the comparison.
            blocks = len(prefix) // block_size
            maxima = [
                max(prefix[i * block_size:(i + 1) * block_size])
                for i in range(blocks)
            ]
            assert np.array_equal(
                estimator.sorted_maxima, np.sort(np.asarray(maxima))
            )
            if blocks >= 2:
                assert maxima == block_maxima(prefix, block_size)
                fresh = fit_gumbel_pwm(maxima)
                fit = estimator.fit()
                # Bit-identical, not approximately equal: the merged
                # order statistics feed the same PWM arithmetic.
                assert fit.location == fresh.location
                assert fit.scale == fresh.scale
                assert estimator.pwcet() == pwcet_estimate(
                    prefix, policy.exceedance, block_size
                )
            else:
                assert estimator.fit() is None
                assert estimator.pwcet() is None

    @given(
        st.lists(times, min_size=8, max_size=60),
        st.floats(min_value=1e-18, max_value=0.4),
        st.floats(min_value=1e-18, max_value=0.4),
    )
    @settings(max_examples=200, deadline=None)
    def test_pwcet_monotone_in_exceedance(self, sample, p_a, p_b):
        rare, common = sorted((p_a, p_b))
        block = 4
        assert pwcet_estimate(sample, rare, block) >= pwcet_estimate(
            sample, common, block
        )

    def test_estimator_is_pure_replay(self):
        rng = np.random.default_rng(7)
        sample = list(rng.gumbel(1000.0, 50.0, size=96))
        first = StreamingGumbelEstimator(POLICY)
        second = StreamingGumbelEstimator(POLICY)
        for start in range(0, len(sample), POLICY.wave_size):
            wave = sample[start:start + POLICY.wave_size]
            if first.converged:
                break
            first.observe_wave(wave)
        # Replaying the identical prefix reproduces everything.
        for start in range(0, first.runs, POLICY.wave_size):
            second.observe_wave(sample[start:start + POLICY.wave_size])
        assert second.converged == first.converged
        assert second.runs == first.runs
        assert second.history == first.history
        assert second.deltas == first.deltas


# ----------------------------------------------------------------------
# adaptive campaigns
# ----------------------------------------------------------------------
class TestAdaptiveCampaign:
    def test_sample_is_prefix_of_fixed_campaign(self, trace):
        fixed = run(trace)
        adaptive = run(trace, adaptive=POLICY)
        assert adaptive.adaptive and adaptive.converged
        assert 0 < adaptive.runs_executed < MAX_RUNS
        assert adaptive.runs == adaptive.runs_executed
        assert adaptive.runs_saved == MAX_RUNS - adaptive.runs_executed
        assert adaptive.execution_times == \
            fixed.execution_times[:adaptive.runs_executed]
        assert adaptive.seeds == fixed.seeds
        assert adaptive.pwcet_rtol_requested == POLICY.rtol
        assert adaptive.pwcet_rtol_achieved is not None
        assert adaptive.pwcet_rtol_achieved < POLICY.rtol

    def test_stopping_is_engine_invariant(self, trace):
        reference = run(trace, adaptive=POLICY, engine="scalar")
        for engine, workers in (("batch", None), ("kernel", None),
                                ("sharded", 2)):
            other = run(trace, adaptive=POLICY, engine=engine,
                        workers=workers)
            assert other.runs_executed == reference.runs_executed
            assert other.converged == reference.converged
            assert other.execution_times == reference.execution_times
            assert other.pwcet_rtol_achieved == reference.pwcet_rtol_achieved

    def test_min_equals_max_reproduces_fixed_campaign(self, trace):
        fixed = run(trace)
        policy = ConvergencePolicy(
            min_runs=MAX_RUNS, max_runs=MAX_RUNS, wave_size=8,
            block_size=4, require_iid=False,
        )
        pinned = run(trace, adaptive=policy)
        assert pinned.runs_executed == MAX_RUNS
        assert pinned.runs_saved == 0
        assert pinned.execution_times == fixed.execution_times

    def test_non_convergence_runs_to_ceiling(self, trace):
        result = run(trace, adaptive=NEVER)
        assert result.runs_executed == MAX_RUNS
        assert result.runs_saved == 0
        assert not result.converged
        assert result.pwcet_rtol_requested == NEVER.rtol

    def test_runs_must_equal_policy_ceiling(self, trace):
        with pytest.raises(ConfigurationError, match="max_runs"):
            run(trace, adaptive=POLICY, runs=MAX_RUNS + 1)

    def test_result_round_trip_and_legacy_payloads(self, trace):
        result = run(trace, adaptive=POLICY)
        clone = CampaignResult.from_dict(json.loads(
            json.dumps(result.to_dict())
        ))
        for field in ("adaptive", "converged", "runs_executed",
                      "runs_saved", "pwcet_rtol_requested",
                      "pwcet_rtol_achieved", "execution_times", "runs"):
            assert getattr(clone, field) == getattr(result, field)
        # Payloads written before the adaptive layer still load.
        legacy = run(trace).to_dict()
        for key in ("adaptive", "converged", "runs_executed", "runs_saved",
                    "pwcet_rtol_requested", "pwcet_rtol_achieved"):
            legacy.pop(key, None)
        loaded = CampaignResult.from_dict(legacy)
        assert loaded.adaptive is False
        assert loaded.runs_executed == loaded.runs

    def test_report_shows_convergence_line(self, trace):
        text = render_campaign(run(trace, adaptive=POLICY))
        assert "convergence: converged after" in text
        assert "saved" in text
        text = render_campaign(run(trace, adaptive=NEVER))
        assert "did NOT converge" in text

    def test_telemetry_counts_saved_runs(self, trace):
        telemetry = Telemetry()
        result = run(trace, adaptive=POLICY, telemetry=telemetry)
        metrics = telemetry.metrics
        assert metrics.value("adaptive_campaigns") == 1
        assert metrics.value("campaigns_converged") == 1
        assert metrics.value("runs_saved_converged") == result.runs_saved
        assert metrics.value("runs_simulated") == result.runs_executed


# ----------------------------------------------------------------------
# speculative wave scheduling
# ----------------------------------------------------------------------
class TestWaveScheduler:
    def test_growth_validated(self):
        for bad in (0.5, 0.0, -1.0, math.inf, math.nan, True, "fast"):
            with pytest.raises(ConfigurationError, match="growth"):
                WaveScheduler(POLICY, growth=bad)

    def test_schedule_validated(self):
        for bad in ((), (8, 0), (-4,), (8.5,), (True,)):
            with pytest.raises(ConfigurationError, match="schedule"):
                WaveScheduler(POLICY, schedule=bad)

    def test_unit_growth_is_wave_by_wave(self):
        blocks = list(WaveScheduler(POLICY, growth=1.0).blocks(MAX_RUNS))
        assert blocks == [(i, i + 8) for i in range(0, MAX_RUNS, 8)]

    def test_geometric_blocks_partition_the_budget(self):
        blocks = list(WaveScheduler(POLICY, growth=4.0).blocks(MAX_RUNS))
        assert [end - start for start, end in blocks] == [8, 32, 24]
        assert blocks[0][0] == 0 and blocks[-1][1] == MAX_RUNS
        for (_, end), (start, _) in zip(blocks, blocks[1:]):
            assert end == start

    def test_explicit_schedule_repeats_its_last_block(self):
        scheduler = WaveScheduler(POLICY, schedule=(8, 16))
        blocks = list(scheduler.blocks(MAX_RUNS))
        assert [end - start for start, end in blocks] == [8, 16, 16, 16, 8]


class TestSpeculativeCampaign:
    def test_speculative_sample_is_prefix_with_reconciled_waste(self, trace):
        fixed = run(trace)
        reference = run(trace, adaptive=POLICY)
        # Dispatch the whole budget in one block: everything past the
        # stopping point is waste, the sample is untouched.
        greedy = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=MAX_RUNS, master_seed=SEED,
            engine="kernel", adaptive=POLICY,
            scheduler=WaveScheduler(POLICY, schedule=(MAX_RUNS,)),
        )
        assert greedy.converged
        assert greedy.runs_executed == reference.runs_executed
        assert greedy.execution_times == reference.execution_times
        assert greedy.runs_speculated_waste == \
            MAX_RUNS - greedy.runs_executed
        assert greedy.runs_saved == 0
        assert greedy.runs_executed + greedy.runs_saved \
            + greedy.runs_speculated_waste == MAX_RUNS
        assert greedy.execution_times == \
            fixed.execution_times[:greedy.runs_executed]

    def test_amortised_backends_speculate_by_default(self, trace):
        result = run(trace, adaptive=POLICY, engine="kernel")
        # The default geometric schedule reproduces the wave-by-wave
        # stopping decision whether or not overshoot occurred.
        reference = run(trace, adaptive=POLICY)
        assert result.runs_executed == reference.runs_executed
        assert result.execution_times == reference.execution_times
        assert result.runs_executed + result.runs_saved \
            + result.runs_speculated_waste == MAX_RUNS

    def test_per_run_backends_never_speculate(self, trace):
        result = run(trace, adaptive=POLICY, engine="scalar")
        assert result.runs_speculated_waste == 0
        assert result.runs_saved == MAX_RUNS - result.runs_executed

    def test_scheduler_requires_adaptive(self, trace):
        with pytest.raises(ConfigurationError, match="adaptive"):
            collect_execution_times(
                trace, CONFIG, SCENARIO, runs=MAX_RUNS, master_seed=SEED,
                scheduler=WaveScheduler(POLICY),
            )

    def test_scheduler_policy_must_match_campaign(self, trace):
        with pytest.raises(ConfigurationError, match="ConvergencePolicy"):
            collect_execution_times(
                trace, CONFIG, SCENARIO, runs=MAX_RUNS, master_seed=SEED,
                adaptive=NEVER, scheduler=WaveScheduler(POLICY),
            )

    def test_waste_counts_on_simulated_not_saved(self, trace):
        telemetry = Telemetry()
        result = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=MAX_RUNS, master_seed=SEED,
            engine="kernel", adaptive=POLICY, telemetry=telemetry,
            scheduler=WaveScheduler(POLICY, schedule=(MAX_RUNS,)),
        )
        metrics = telemetry.metrics
        assert result.runs_speculated_waste > 0
        assert metrics.value("runs_simulated") == \
            result.runs_executed + result.runs_speculated_waste
        assert metrics.value("runs_speculated_waste") == \
            result.runs_speculated_waste
        assert metrics.value("runs_saved_converged") == result.runs_saved

    def test_report_and_wire_format_carry_waste(self, trace):
        result = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=MAX_RUNS, master_seed=SEED,
            engine="kernel", adaptive=POLICY,
            scheduler=WaveScheduler(POLICY, schedule=(MAX_RUNS,)),
        )
        text = render_campaign(result)
        assert "speculated past stop" in text
        assert f"of {MAX_RUNS} runs" in text
        clone = CampaignResult.from_dict(json.loads(result.to_json()))
        assert clone.runs_speculated_waste == result.runs_speculated_waste


#: Arbitrary dispatch schedules, including degenerate single-run blocks
#: and blocks far larger than the budget.
schedules = st.lists(
    st.integers(min_value=1, max_value=2 * MAX_RUNS), min_size=1, max_size=6
).map(tuple)


class TestScheduleInvariance:
    """Dispatch grouping is unobservable in the sample (property)."""

    _reference = None

    def reference(self):
        if TestScheduleInvariance._reference is None:
            trace = make_stream_trace("adapt", words=32, sweeps=2)
            TestScheduleInvariance._reference = run(trace, adaptive=POLICY)
        return TestScheduleInvariance._reference

    @given(schedule=schedules, engine=st.sampled_from(["batch", "kernel"]))
    @settings(max_examples=12, deadline=None)
    def test_any_schedule_reproduces_wave_by_wave(self, schedule, engine):
        reference = self.reference()
        trace = make_stream_trace("adapt", words=32, sweeps=2)
        result = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=MAX_RUNS, master_seed=SEED,
            engine=engine, adaptive=POLICY,
            scheduler=WaveScheduler(POLICY, schedule=schedule),
        )
        assert result.converged == reference.converged
        assert result.runs_executed == reference.runs_executed
        assert result.execution_times == reference.execution_times
        assert result.pwcet_rtol_achieved == reference.pwcet_rtol_achieved
        assert result.runs_executed + result.runs_saved \
            + result.runs_speculated_waste == MAX_RUNS

    @given(schedule=schedules, kill_after=st.integers(min_value=1,
                                                      max_value=30))
    @settings(max_examples=8, deadline=None)
    def test_kill_and_resume_under_any_schedule(self, tmp_path_factory,
                                                schedule, kill_after):
        reference = self.reference()
        trace = make_stream_trace("adapt", words=32, sweeps=2)
        journal = tmp_path_factory.mktemp("spec") / "journal.jsonl"
        first = collect_execution_times(
            trace, CONFIG, SCENARIO, runs=MAX_RUNS, master_seed=SEED,
            engine="kernel", adaptive=POLICY,
            scheduler=WaveScheduler(POLICY, schedule=schedule),
            checkpoint=CampaignCheckpoint(journal),
        )
        assert first.execution_times == reference.execution_times
        # SIGKILL mid-campaign: truncate the journal, then resume with
        # plain wave-by-wave dispatch — journalled speculative overshoot
        # must replay harmlessly and the stopping decision must hold.
        lines = journal.read_text().splitlines()
        journal.write_text(
            "\n".join(lines[:1 + min(kill_after, len(lines) - 1)]) + "\n"
        )
        resumed = run(trace, adaptive=POLICY, journal=journal)
        assert resumed.converged == reference.converged
        assert resumed.runs_executed == reference.runs_executed
        assert resumed.execution_times == reference.execution_times


# ----------------------------------------------------------------------
# checkpoint kill-and-resume
# ----------------------------------------------------------------------
class TestAdaptiveResume:
    def test_resume_reproduces_stopping_decision(self, trace, tmp_path):
        journal = tmp_path / "adaptive.jsonl"
        reference = run(trace, adaptive=POLICY, journal=journal)
        lines = journal.read_text().splitlines()
        assert len(lines) == 1 + reference.runs_executed
        # Kill after 10 completed runs: keep the header plus 10 records.
        journal.write_text("\n".join(lines[:11]) + "\n")
        resumed = run(trace, adaptive=POLICY, journal=journal)
        assert resumed.resumed_runs == 10
        assert resumed.runs_executed == reference.runs_executed
        assert resumed.converged == reference.converged
        assert resumed.execution_times == reference.execution_times
        assert resumed.pwcet_rtol_achieved == reference.pwcet_rtol_achieved

    def test_fixed_journal_feeds_adaptive_resume(self, trace, tmp_path):
        # The run journal's fingerprint deliberately excludes the
        # policy: a fixed-R journal at the same max_runs is a valid
        # prefix source for the adaptive campaign (and vice versa).
        journal = tmp_path / "fixed.jsonl"
        fixed = run(trace, journal=journal)
        adaptive = run(trace, adaptive=POLICY, journal=journal)
        assert adaptive.execution_times == \
            fixed.execution_times[:adaptive.runs_executed]
        assert adaptive.resumed_runs == adaptive.runs_executed

    def test_fully_journalled_adaptive_replays_without_executing(
            self, trace, tmp_path):
        journal = tmp_path / "adaptive.jsonl"
        reference = run(trace, adaptive=POLICY, journal=journal)
        replayed = run(trace, adaptive=POLICY, journal=journal)
        assert replayed.resumed_runs == reference.runs_executed
        assert replayed.execution_times == reference.execution_times
        assert replayed.converged == reference.converged


# ----------------------------------------------------------------------
# service integration
# ----------------------------------------------------------------------
class TestAdaptiveService:
    def make_job(self, adaptive=None, runs=MAX_RUNS):
        trace = make_stream_trace("adapt", words=32, sweeps=2)
        return CampaignJob(
            trace, CONFIG, SCENARIO, runs=runs, master_seed=SEED,
            engine="scalar", adaptive=adaptive,
        )

    def assert_reconciled(self, telemetry):
        metrics = telemetry.metrics
        assert metrics.value("runs_requested") == (
            metrics.value("runs_simulated")
            + metrics.value("runs_resumed")
            + metrics.value("runs_served_from_cache")
            + metrics.value("runs_shed")
            + metrics.value("runs_saved_converged")
        )

    def test_job_rejects_runs_policy_mismatch(self):
        with pytest.raises(ConfigurationError, match="max_runs"):
            self.make_job(adaptive=POLICY, runs=MAX_RUNS + 1)

    def test_adaptive_and_fixed_fingerprints_differ(self):
        adaptive = self.make_job(adaptive=POLICY)
        fixed = self.make_job()
        assert adaptive.fingerprint != fixed.fingerprint
        other = self.make_job(
            adaptive=ConvergencePolicy(
                min_runs=8, max_runs=MAX_RUNS, wave_size=8, block_size=4,
                rtol=0.25, stable_waves=2, require_iid=False,
            )
        )
        assert adaptive.fingerprint != other.fingerprint

    def test_job_spec_round_trips_policy(self):
        job = self.make_job(adaptive=POLICY)
        spec = json.loads(json.dumps(job_spec(job)))
        rebuilt = job_from_spec(spec)
        assert rebuilt.adaptive == POLICY
        assert rebuilt.fingerprint == job.fingerprint
        plain = self.make_job()
        assert job_from_spec(json.loads(
            json.dumps(job_spec(plain))
        )).adaptive is None

    def test_store_ledger_reconciles_with_saved_runs(self, tmp_path):
        telemetry = Telemetry()
        store = ResultStore(tmp_path / "store")
        with JobQueue(workers=1, telemetry=telemetry) as queue:
            job = self.make_job(adaptive=POLICY)
            result = store.get_or_submit(job, queue).wait()
            assert result.converged
            assert result.runs_saved > 0
            self.assert_reconciled(telemetry)
            # A byte-identical adaptive resubmission answers from the
            # store, bit-identically, and the ledger still balances.
            again = store.get_or_submit(
                self.make_job(adaptive=POLICY), queue
            ).wait()
            assert again.execution_times == result.execution_times
            assert again.converged and again.runs_saved == result.runs_saved
            self.assert_reconciled(telemetry)
            # The fixed-R twin is a store miss: it simulates the full
            # budget rather than serving the adaptive prefix.
            fixed = store.get_or_submit(self.make_job(), queue).wait()
            assert fixed.runs == MAX_RUNS
            assert fixed.execution_times[:result.runs_executed] == \
                result.execution_times
            self.assert_reconciled(telemetry)

    def test_campaign_fingerprint_policy_split(self, trace):
        base = campaign_fingerprint(trace, CONFIG, SCENARIO, SEED, MAX_RUNS)
        assert base == campaign_fingerprint(
            trace, CONFIG, SCENARIO, SEED, MAX_RUNS, adaptive=None
        )
        assert base != campaign_fingerprint(
            trace, CONFIG, SCENARIO, SEED, MAX_RUNS, adaptive=POLICY
        )
