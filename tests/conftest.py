"""Shared fixtures: small platforms and traces that keep tests fast.

Tests never need the paper-scale platform; a 1/16-scale system with a
few-hundred-instruction trace exercises every code path in
milliseconds.
"""

from __future__ import annotations

import pytest

from repro.cpu.trace import Trace, TraceBuilder
from repro.sim.config import SystemConfig
from repro.workloads.scale import ExperimentScale


@pytest.fixture
def tiny_scale() -> ExperimentScale:
    """The smallest preset (1/16 platform)."""
    return ExperimentScale.tiny()


@pytest.fixture
def tiny_config(tiny_scale) -> SystemConfig:
    """A 1/16-scale platform (256B L1s, 4KB LLC)."""
    return tiny_scale.system_config()


@pytest.fixture
def paper_config() -> SystemConfig:
    """The paper's exact platform (4KB L1s, 64KB LLC)."""
    return SystemConfig()


def make_stream_trace(
    name: str = "stream",
    words: int = 64,
    sweeps: int = 3,
    base: int = 0x10_0000,
    store_every: int = 0,
) -> Trace:
    """A small sweeping-loads trace for simulator tests."""
    builder = TraceBuilder(name, code_base=0x1000)
    for _sweep in range(sweeps):
        body = builder.loop_start()
        for index in range(words):
            address = base + 4 * index
            builder.load(address)
            if store_every and index % store_every == store_every - 1:
                builder.store(address)
            builder.branch(back_to=body if index < words - 1 else None)
    return builder.build()


@pytest.fixture
def stream_trace() -> Trace:
    """A ~400-instruction streaming trace."""
    return make_stream_trace()


@pytest.fixture
def store_trace() -> Trace:
    """A streaming trace with stores (exercises write-backs)."""
    return make_stream_trace(name="stores", store_every=2)
