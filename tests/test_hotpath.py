"""Hot-path equivalence: optimised vs reference, profiled vs plain.

The backend-equivalence analogue for the single-run optimisations:
every scenario class the simulator supports must produce bit-identical
:class:`~repro.sim.simulator.RunResult` timing through

* the optimised hot path (the shipped implementations),
* the preserved pre-optimisation reference path
  (:mod:`repro.sim.reference`), and
* the optimised path with profiling enabled (``profile=True``).

Also sanity-checks the profiler's attribution against independently
tracked counters (EFL stall cycles) and its behaviour across the
process backend.
"""

from __future__ import annotations

import pytest

from repro.core.config import OperationMode
from repro.sim.backend import ProcessPoolBackend, ProfilingObserver, SerialBackend
from repro.sim.config import Scenario, SystemConfig
from repro.sim.profiler import COMPONENTS, HotPathProfiler, ProfileSnapshot
from repro.sim.reference import reference_hot_path
from repro.sim.simulator import RunRequest, execute_request
from repro.workloads.suite import build_benchmark

SEED = 20140601


def _core_timings(result):
    return [
        (core.core, core.cycles, core.instructions, core.efl_stall_cycles)
        for core in result.cores
    ]


def _run_results_equal(a, b):
    assert _core_timings(a) == _core_timings(b)
    assert a.llc_hits == b.llc_hits
    assert a.llc_misses == b.llc_misses
    assert a.llc_forced_evictions == b.llc_forced_evictions
    assert a.memory_reads == b.memory_reads
    assert a.memory_writes == b.memory_writes


def _requests():
    """One request per scenario class the simulator distinguishes."""
    tr_config = SystemConfig()
    td_config = SystemConfig(placement="modulo", replacement="lru")
    trace = build_benchmark("ID", scale=0.5)
    trace_b = build_benchmark("MA", scale=0.5)
    return {
        "efl-analysis": RunRequest.isolation(
            trace, tr_config, Scenario.efl(500), SEED
        ),
        "cp-analysis": RunRequest.isolation(
            trace,
            tr_config,
            Scenario.cache_partitioning(2, num_cores=tr_config.num_cores),
            SEED,
        ),
        "td-uncontrolled": RunRequest.isolation(
            trace, td_config, Scenario.uncontrolled(OperationMode.ANALYSIS), SEED
        ),
        "efl-deployment-workload": RunRequest.workload(
            (trace, trace_b),
            tr_config,
            Scenario.efl(500, mode=OperationMode.DEPLOYMENT),
            SEED,
        ),
        "a2-write-through": RunRequest.isolation(
            trace, SystemConfig(dl1_write_back=False), Scenario.efl(500), SEED
        ),
    }


class TestReferenceEquivalence:
    @pytest.mark.parametrize("label", sorted(_requests()))
    def test_reference_path_is_bit_identical(self, label):
        request = _requests()[label]
        optimised = execute_request(request)
        with reference_hot_path():
            reference = execute_request(request)
        _run_results_equal(optimised, reference)

    def test_reference_context_restores_implementations(self):
        from repro.mem.cache import Cache
        before = Cache.__dict__["access"]
        with reference_hot_path():
            assert Cache.__dict__["access"] is not before
        assert Cache.__dict__["access"] is before

    def test_reference_context_restores_on_error(self):
        from repro.mem.cache import Cache
        before = Cache.__dict__["access"]
        with pytest.raises(RuntimeError):
            with reference_hot_path():
                raise RuntimeError("boom")
        assert Cache.__dict__["access"] is before


class TestProfilerEquivalence:
    @pytest.mark.parametrize("label", sorted(_requests()))
    def test_profiling_never_changes_timing(self, label):
        request = _requests()[label]
        plain = execute_request(request)
        profiled = execute_request(
            RunRequest(
                request.engine, request.traces, request.config,
                request.scenario, request.seed, request.index,
                request.core_id, profile=True,
            )
        )
        _run_results_equal(plain, profiled)
        assert plain.profile is None
        assert profiled.profile is not None

    def test_efl_attribution_matches_stall_counters(self):
        request = _requests()["efl-analysis"]
        profiled = execute_request(
            RunRequest.isolation(
                request.traces[0], request.config, request.scenario,
                request.seed, profile=True,
            )
        )
        stalls = sum(core.efl_stall_cycles for core in profiled.cores)
        assert profiled.profile.cycles["efl"] == stalls

    def test_all_components_present_in_snapshot(self):
        request = _requests()["efl-analysis"]
        profiled = execute_request(
            RunRequest.isolation(
                request.traces[0], request.config, request.scenario,
                request.seed, profile=True,
            )
        )
        snap = profiled.profile
        assert set(snap.events) == set(COMPONENTS)
        assert set(snap.cycles) == set(COMPONENTS)
        # A non-trivial EFL run must touch every component.
        assert all(snap.events[name] > 0 for name in COMPONENTS)
        assert snap.total_cycles > 0
        assert snap.total_wall_s > 0


class TestProfilerPrimitives:
    def test_account_and_snapshot(self):
        profiler = HotPathProfiler()
        profiler.account("bus", 10, 0.5)
        profiler.account("bus", 5)
        snap = profiler.snapshot()
        assert snap.events["bus"] == 2
        assert snap.cycles["bus"] == 15
        assert snap.wall_s["bus"] == pytest.approx(0.5)

    def test_snapshot_is_frozen_copy(self):
        profiler = HotPathProfiler()
        snap = profiler.snapshot()
        profiler.account("llc", 7)
        assert snap.cycles["llc"] == 0

    def test_merge_skips_none(self):
        a = ProfileSnapshot(events={"bus": 1}, cycles={"bus": 2}, wall_s={"bus": 0.1})
        b = ProfileSnapshot(events={"bus": 3}, cycles={"bus": 4}, wall_s={"bus": 0.2})
        merged = ProfileSnapshot.merge([a, None, b])
        assert merged.events["bus"] == 4
        assert merged.cycles["bus"] == 6
        assert merged.wall_s["bus"] == pytest.approx(0.3)


class TestProfilingObserver:
    def _requests_batch(self, profile):
        trace = build_benchmark("ID", scale=0.25)
        template = RunRequest.isolation(
            trace, SystemConfig(), Scenario.efl(500), SEED, profile=profile
        )
        return [template.with_run(i, SEED + i) for i in range(4)]

    def test_collects_snapshots_serially(self):
        observer = ProfilingObserver()
        outcomes = SerialBackend().execute(
            self._requests_batch(profile=True), observer=observer
        )
        assert len(observer.snapshots) == len(outcomes) == 4
        assert observer.total.total_cycles == sum(
            snap.total_cycles for snap in observer.snapshots
        )

    def test_no_snapshots_without_profile(self):
        observer = ProfilingObserver()
        SerialBackend().execute(self._requests_batch(profile=False), observer=observer)
        assert observer.snapshots == []

    def test_snapshots_survive_process_backend(self):
        serial_observer = ProfilingObserver()
        SerialBackend().execute(
            self._requests_batch(profile=True), observer=serial_observer
        )
        process_observer = ProfilingObserver()
        ProcessPoolBackend(workers=2, force_pool=True).execute(
            self._requests_batch(profile=True), observer=process_observer
        )
        assert len(process_observer.snapshots) == 4
        # Cycle attribution is deterministic (wall times are not).
        assert process_observer.total.cycles == serial_observer.total.cycles
        assert process_observer.total.events == serial_observer.total.events
